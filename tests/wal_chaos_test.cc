// Crash-chaos tests for the WAL: seeded failpoints inject the three
// classic durability faults (torn block write, crash between append and
// fsync, fsync failure) into a live banking run, and recovery of whatever
// reached the disk must yield a transaction-consistent prefix — the
// conservation invariant (total balance unchanged by any transfer prefix)
// is the consistency oracle. The second half does the same to the fuzzy
// checkpointer: a crash at any point of a checkpoint round (mid-segment,
// before the manifest, after the manifest but before truncation, fsync
// failure) must leave recovery on a consistent prefix, and a half-written
// checkpoint must never be preferred over an older valid one. Requires
// -DMV3C_FAILPOINTS=ON; skips otherwise.

#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "wal/catalog.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c {
namespace {

namespace fs = std::filesystem;
namespace fp = ::mv3c::failpoint;

constexpr int64_t kAccounts = 100;
constexpr int64_t kInitial = 10'000;
constexpr int64_t kTotal = kAccounts * kInitial;

class WalChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::kEnabled) {
      GTEST_SKIP() << "failpoint hooks compiled out (MV3C_FAILPOINTS=OFF)";
    }
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_chaos_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fp::Reset(0xC4A05'5EEDull);
  }
  void TearDown() override {
    if (fp::kEnabled) fp::DisarmAll();
    fs::remove_all(dir_);
  }

  struct CrashRun {
    uint64_t durable_epoch_at_crash = 0;
    uint64_t committed_after_arm = 0;
    uint64_t flush_failures = 0;
  };

  /// Runs banking with the WAL on: establishes a durable prefix, arms
  /// `site` to fire on the next non-empty flush round, keeps committing
  /// until the log crashes.
  CrashRun RunUntilCrash(fp::Site site) {
    CrashRun out;
    TransactionManager mgr;
    wal::WalConfig cfg;
    cfg.dir = dir_.string();
    cfg.ack = wal::WalConfig::Ack::kAsync;
    cfg.epoch_interval_us = 50;
    cfg.partitions = partitions_;  // 0 = auto (env); fixtures may pin
    mgr.EnableWal(cfg);
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    db.Load();

    banking::TransferGenerator gen(kAccounts, 100, /*seed=*/11);
    Mv3cExecutor e(&mgr);
    for (int i = 0; i < 100; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    // The pre-fault history is durable; everything after this point may
    // be lost, but never torn mid-transaction.
    EXPECT_TRUE(mgr.wal()->FlushNow());
    EXPECT_FALSE(mgr.wal()->crashed());

    fp::Config fc;
    fc.action = fp::Action::kFail;
    fc.probability = 1.0;
    fc.max_trips = 1;
    fp::Arm(site, fc);

    // Commit until the writer hits the fault (it only evaluates the site
    // on non-empty rounds, so committing guarantees progress).
    for (int i = 0; i < 5000 && !mgr.wal()->crashed(); ++i) {
      if (e.Run(banking::Mv3cTransferMoney(db, gen.Next())) ==
          StepResult::kCommitted) {
        ++out.committed_after_arm;
      }
    }
    // The commit loop can outrun the writer thread: when it gives up,
    // committed records may still sit in the buffers with the fault due on
    // the writer's next wakeup. Force rounds until the armed site trips —
    // WaitDurable returns on crash, and a round over non-empty buffers
    // must evaluate the site (probability 1.0), so this cannot spin.
    while (!mgr.wal()->crashed()) (void)mgr.wal()->FlushNow();
    EXPECT_TRUE(mgr.wal()->crashed());
    EXPECT_EQ(fp::Trips(site), 1u);
    // Crashed log: durability waits must fail, not hang.
    EXPECT_FALSE(mgr.wal()->WaitDurable(mgr.wal()->current_epoch()));
    EXPECT_FALSE(mgr.wal()->FlushNow());
    out.durable_epoch_at_crash = mgr.wal()->durable_epoch();
    out.flush_failures =
        mgr.wal()->metrics().Snapshot().Value("wal_flush_failures");
    // The in-memory database is still live and consistent even though
    // durability is gone (commits outran the log, as async ack allows).
    EXPECT_EQ(db.TotalBalance(), kTotal);
    mgr.DisableWal();
    return out;
  }

  struct Recovered {
    wal::RecoveryReport report;
    int64_t total = 0;
    uint64_t live_rows = 0;
  };

  Recovered Recover() {
    Recovered r;
    TransactionManager mgr;
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    r.report = cat.Recover(dir_.string());
    r.total = db.TotalBalance();
    r.live_rows = wal::DigestMvccTable(db.accounts).live_rows;
    return r;
  }

  /// The shared postcondition: recovery lands on a transaction-consistent
  /// prefix that includes at least the pre-fault durable history.
  void ExpectConsistentPrefix(const Recovered& r, const CrashRun& run) {
    EXPECT_GE(r.report.max_epoch, 1u);
    EXPECT_GT(r.report.records_applied, 0u);
    EXPECT_EQ(r.report.records_skipped_unknown_table, 0u);
    // The population transaction and the 100 pre-fault transfers were
    // acknowledged durable, so every account row exists and conservation
    // holds regardless of where the fault cut the tail.
    EXPECT_EQ(r.live_rows, static_cast<uint64_t>(kAccounts) + 1);
    EXPECT_EQ(r.total, kTotal);
    // Nothing beyond what the log acknowledged... except for the
    // append-then-crash faults, where one written-but-unacknowledged
    // block may legitimately survive (checked per-site below).
    (void)run;
  }

  fs::path dir_;
  uint32_t partitions_ = 0;
};

TEST_F(WalChaosTest, TornBlockWrite) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalShortWrite);
  const Recovered r = Recover();
  // Half a block reached the file: recovery must detect the tear and cut
  // exactly there. (LE, not EQ: empty rounds advance the durable epoch
  // without writing a block.)
  EXPECT_TRUE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_LE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalChaosTest, CrashBetweenAppendAndFsync) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalCrashAfterAppend);
  const Recovered r = Recover();
  // The block's bytes reached the file intact but were never fsynced: on
  // a real crash either outcome is legal. Reading the surviving file, the
  // block is whole, so recovery replays one epoch past the acknowledged
  // durable point — allowed, as long as the result is still a consistent
  // prefix.
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalChaosTest, FsyncFailureFreezesLog) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalFsyncFail);
  EXPECT_EQ(run.flush_failures, 1u);
  const Recovered r = Recover();
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

// --- Partitioned log: one stream faults, the epoch must not be durable ----

/// Same fault sites, but with the log split across four partition streams.
/// The armed failpoint trips in exactly one partition's flusher (whichever
/// evaluates it first — it may hit a data block or a heartbeat). The round
/// barrier then fails the whole round, so the epoch is never reported
/// durable even though the other three streams may hold intact blocks for
/// it; recovery's min-over-streams cut must discard that overhang and land
/// on a consistent prefix.
class WalPartitionedChaosTest : public WalChaosTest {
 protected:
  void SetUp() override {
    WalChaosTest::SetUp();
    partitions_ = 4;
  }
};

TEST_F(WalPartitionedChaosTest, OnePartitionTornWrite) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalShortWrite);
  const Recovered r = Recover();
  EXPECT_EQ(r.report.streams, 4u);
  EXPECT_TRUE(r.report.torn_tail) << r.report.stop_reason;
  // The torn stream caps the cut at the epoch before the failed round, so
  // nothing past the last acknowledged durable epoch is applied even if the
  // other streams carry intact blocks for the failed round.
  EXPECT_LE(r.report.max_epoch, run.durable_epoch_at_crash);
  EXPECT_LE(r.report.durable_cut, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalPartitionedChaosTest, OnePartitionCrashAfterAppend) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalCrashAfterAppend);
  const Recovered r = Recover();
  EXPECT_EQ(r.report.streams, 4u);
  // Every stream wrote its block intact before the simulated crash, so no
  // stream tears and the cut may legitimately run past the durable point.
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalPartitionedChaosTest, OnePartitionFsyncFailure) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalFsyncFail);
  EXPECT_EQ(run.flush_failures, 1u);
  const Recovered r = Recover();
  EXPECT_EQ(r.report.streams, 4u);
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

// --- Crash mid-checkpoint -------------------------------------------------

/// Harness for the checkpoint fault sites: establish one good checkpoint,
/// run more history, arm a checkpoint failpoint, attempt a second round
/// (which dies at the armed site), run yet more history, stop cleanly, and
/// recover with the two-phase path. Whatever the fault, recovery must land
/// exactly on the live pre-stop state: the WAL itself never crashed, so
/// nothing durable may be lost — a botched checkpoint costs only the
/// checkpoint.
class WalCkptChaosTest : public WalChaosTest {
 protected:
  struct CkptCrash {
    uint64_t published_after_fault = 0;  // 1 = round 2 died pre-publish
    wal::TableDigest live_digest{};
    int64_t live_total = 0;
  };

  CkptCrash RunWithCheckpointFault(fp::Site site) {
    CkptCrash out;
    TransactionManager mgr;
    wal::WalConfig cfg;
    cfg.dir = dir_.string();
    cfg.ack = wal::WalConfig::Ack::kAsync;
    cfg.segment_bytes = 4096;  // rotate often so truncation is real
    mgr.EnableWal(cfg);
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    db.Load();

    wal::CheckpointConfig ck_cfg;
    ck_cfg.dir = dir_.string();
    ck_cfg.interval_ms = 0;  // manual rounds only
    wal::Checkpointer ck(ck_cfg, mgr.wal(), cat.CheckpointSourceProvider());

    banking::TransferGenerator gen(kAccounts, 100, /*seed=*/11);
    Mv3cExecutor e(&mgr);
    for (int i = 0; i < 200; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    EXPECT_TRUE(mgr.wal()->FlushNow());
    EXPECT_TRUE(ck.TakeCheckpoint());
    EXPECT_EQ(ck.published_seq(), 1u);

    for (int i = 0; i < 200; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    fp::Config fc;
    fc.action = fp::Action::kFail;
    fc.probability = 1.0;
    fc.max_trips = 1;
    fp::Arm(site, fc);
    EXPECT_FALSE(ck.TakeCheckpoint());  // the round dies at the site
    EXPECT_TRUE(ck.failed());
    EXPECT_EQ(fp::Trips(site), 1u);
    EXPECT_FALSE(ck.TakeCheckpoint());  // frozen, like a crashed log
    out.published_after_fault = ck.published_seq();

    // The WAL is fine — commits keep flowing after the checkpointer died.
    EXPECT_FALSE(mgr.wal()->crashed());
    for (int i = 0; i < 100; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    EXPECT_TRUE(mgr.wal()->FlushNow());
    mgr.DisableWal();
    out.live_digest = wal::DigestMvccTable(db.accounts);
    out.live_total = db.TotalBalance();
    EXPECT_EQ(out.live_total, kTotal);
    return out;
  }

  struct CkptRecovered {
    wal::RecoveryReport report;
    wal::TableDigest digest{};
    int64_t total = 0;
  };

  CkptRecovered RecoverTwoPhase() {
    CkptRecovered r;
    TransactionManager mgr;
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    r.report = cat.RecoverWithCheckpoints(dir_.string());
    r.digest = wal::DigestMvccTable(db.accounts);
    r.total = db.TotalBalance();
    return r;
  }

  /// The checkpoint-chaos oracle: recovery used a checkpoint, landed on
  /// the exact live state, and never counted fallback work (a debris
  /// directory without a manifest is invisible, not "skipped").
  void ExpectExactRecovery(const CkptCrash& run, uint64_t want_seq) {
    const CkptRecovered r = RecoverTwoPhase();
    EXPECT_TRUE(r.report.used_checkpoint);
    EXPECT_EQ(r.report.checkpoint_seq, want_seq);
    EXPECT_EQ(r.report.manifests_skipped, 0u);
    EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
    EXPECT_EQ(r.digest, run.live_digest);
    EXPECT_EQ(r.total, run.live_total);
  }
};

TEST_F(WalCkptChaosTest, CrashMidSegmentNeverPrefersDebris) {
  const CkptCrash run = RunWithCheckpointFault(fp::Site::kCkptCrashMidSegment);
  EXPECT_EQ(run.published_after_fault, 1u);
  // The half-written segment's directory is on disk — but without a
  // manifest it must be ignored, and checkpoint 1 used instead.
  EXPECT_TRUE(fs::exists(dir_ / wal::CkptDirName(2)));
  EXPECT_FALSE(fs::exists(dir_ / wal::ManifestName(2)));
  ExpectExactRecovery(run, /*want_seq=*/1);
}

TEST_F(WalCkptChaosTest, CrashBeforeManifestDiscardsRound) {
  const CkptCrash run =
      RunWithCheckpointFault(fp::Site::kCkptCrashBeforeManifest);
  EXPECT_EQ(run.published_after_fault, 1u);
  // Segments fully written, manifest never: the round simply never
  // happened as far as recovery is concerned.
  EXPECT_FALSE(fs::exists(dir_ / wal::ManifestName(2)));
  ExpectExactRecovery(run, /*want_seq=*/1);
}

TEST_F(WalCkptChaosTest, FsyncFailureFreezesCheckpointer) {
  const CkptCrash run = RunWithCheckpointFault(fp::Site::kCkptFsyncFail);
  EXPECT_EQ(run.published_after_fault, 1u);
  ExpectExactRecovery(run, /*want_seq=*/1);
}

TEST_F(WalCkptChaosTest, CrashAfterManifestBeforeTruncateKeepsBoth) {
  const CkptCrash run = RunWithCheckpointFault(
      fp::Site::kCkptCrashAfterManifestBeforeTruncate);
  // The manifest IS the commit point: checkpoint 2 was published, only
  // the (idempotent, re-doable) truncation was lost.
  EXPECT_EQ(run.published_after_fault, 2u);
  EXPECT_TRUE(fs::exists(dir_ / wal::ManifestName(2)));
  ExpectExactRecovery(run, /*want_seq=*/2);
  // And because truncation never ran, the full log survives: genesis
  // replay must agree with the two-phase path — the strongest
  // equivalence this harness can check.
  TransactionManager mgr;
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  const wal::RecoveryReport rep = cat.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  EXPECT_EQ(wal::DigestMvccTable(db.accounts), run.live_digest);
}

// A restarted checkpointer resumes numbering past the debris and its next
// round replaces the half-written directory.
TEST_F(WalCkptChaosTest, RestartAfterMidSegmentCrashResumes) {
  TransactionManager mgr;
  wal::WalConfig cfg;
  cfg.dir = dir_.string();
  cfg.ack = wal::WalConfig::Ack::kAsync;
  mgr.EnableWal(cfg);
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();
  wal::CheckpointConfig ck_cfg;
  ck_cfg.dir = dir_.string();
  banking::TransferGenerator gen(kAccounts, 100, /*seed=*/11);
  Mv3cExecutor e(&mgr);
  {
    wal::Checkpointer ck(ck_cfg, mgr.wal(), cat.CheckpointSourceProvider());
    for (int i = 0; i < 100; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    ASSERT_TRUE(mgr.wal()->FlushNow());
    ASSERT_TRUE(ck.TakeCheckpoint());
    fp::Config fc;
    fc.action = fp::Action::kFail;
    fc.probability = 1.0;
    fc.max_trips = 1;
    fp::Arm(fp::Site::kCkptCrashMidSegment, fc);
    EXPECT_FALSE(ck.TakeCheckpoint());
  }
  fp::DisarmAll();
  // "Reboot": a fresh checkpointer over the same directory.
  wal::Checkpointer ck2(ck_cfg, mgr.wal(), cat.CheckpointSourceProvider());
  EXPECT_EQ(ck2.published_seq(), 1u);  // seeded from the valid manifest
  for (int i = 0; i < 100; ++i) {
    (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
  }
  ASSERT_TRUE(mgr.wal()->FlushNow());
  ASSERT_TRUE(ck2.TakeCheckpoint());
  EXPECT_EQ(ck2.published_seq(), 2u);
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  const wal::TableDigest live = wal::DigestMvccTable(db.accounts);

  TransactionManager mgr2;
  banking::BankingDb db2(&mgr2, kAccounts, kInitial);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.RecoverWithCheckpoints(dir_.string());
  EXPECT_TRUE(rep.used_checkpoint);
  EXPECT_EQ(rep.checkpoint_seq, 2u);
  EXPECT_EQ(rep.manifests_skipped, 0u);
  EXPECT_EQ(wal::DigestMvccTable(db2.accounts), live);
}

// Same seed, same fault site, fresh directory: the recovered prefix is a
// deterministic function of the single-threaded commit order up to the
// (timing-dependent) cut point, so both runs must satisfy the oracle —
// and the schedule bookkeeping must show exactly one firing each.
TEST_F(WalChaosTest, RepeatedTornWritesAlwaysRecoverConsistently) {
  for (int round = 0; round < 3; ++round) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fp::Reset(1000 + static_cast<uint64_t>(round));
    const CrashRun run = RunUntilCrash(fp::Site::kWalShortWrite);
    const Recovered r = Recover();
    EXPECT_TRUE(r.report.torn_tail);
    ExpectConsistentPrefix(r, run);
    fp::DisarmAll();
  }
}

}  // namespace
}  // namespace mv3c
