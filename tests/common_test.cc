// Tests for the common utilities: PRNG determinism, Zipf distribution
// properties, NURand bounds, column masks, the spin lock, and the trading
// stream cipher.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/cipher.h"
#include "common/column_mask.h"
#include "common/nurand.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/zipf.h"

namespace mv3c {
namespace {

TEST(XoshiroTest, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, RoughlyUniform) {
  Xoshiro256 rng(99);
  int buckets[10] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.NextBounded(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 10 * 0.1);
  }
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, RankFrequenciesDecreaseAndMatchTheory) {
  const double alpha = GetParam();
  constexpr uint64_t kN = 1000;
  ZipfGenerator zipf(kN, alpha);
  Xoshiro256 rng(5);
  std::vector<uint64_t> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Frequency of rank 0 matches 1 / (1^a * H(n,a)) within sampling noise.
  double h = 0;
  for (uint64_t i = 1; i <= kN; ++i) h += 1.0 / std::pow(i, alpha);
  const double expected0 = kDraws / h;
  EXPECT_NEAR(counts[0], expected0, expected0 * 0.1 + 50);
  // Top ranks dominate tail ranks for alpha > 0.
  if (alpha > 0.5) {
    EXPECT_GT(counts[0], counts[kN / 2] * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.4, 2.0));

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  Xoshiro256 rng(3);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  for (uint64_t c : counts) EXPECT_NEAR(c, 1000, 250);
}

TEST(NuRandTest, StaysInRangeAndIsNonUniform) {
  NuRand nurand(77);
  Xoshiro256 rng(1);
  std::vector<uint64_t> counts(3000, 0);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t v = nurand.Next(rng, 1023, 1, 3000);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 3000u);
    ++counts[v - 1];
  }
  const uint64_t max_c = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_c, 300000 / 3000 * 2);  // clearly non-uniform
}

TEST(NuRandTest, TatpAConstantScales) {
  EXPECT_EQ(TatpAConstant(1000000), 65535u);
  EXPECT_EQ(TatpAConstant(100000), 65535u);
  EXPECT_LT(TatpAConstant(1000), 1000u);
  EXPECT_EQ(TatpAConstant(1000), 511u);  // largest 2^k - 1 below 1000
}

TEST(ColumnMaskTest, Operations) {
  constexpr ColumnMask a = ColumnMask::Of(0);
  constexpr ColumnMask b = ColumnMask::Of(5);
  constexpr ColumnMask ab = a | b;
  EXPECT_TRUE(ab.Contains(0));
  EXPECT_TRUE(ab.Contains(5));
  EXPECT_FALSE(ab.Contains(1));
  EXPECT_TRUE(ab.Intersects(a));
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(ColumnMask::All().Intersects(b));
  EXPECT_TRUE(ColumnMask().Empty());
  EXPECT_EQ(a | b, ab);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        // Tests deliberately keep one std::lock_guard use: SpinLock must
        // stay BasicLockable (the src/-only lint rule forbids this inside
        // the library, where acquisitions must be analysis-visible).
        std::lock_guard<SpinLock> g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4 * 50000);
}

TEST(SpinLockTest, GuardMutualExclusion) {
  // Same contract through the annotated guard (the in-library idiom).
  SpinLock lock;
  int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        SpinLockGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 4 * 50000);
}

TEST(SpinLockTest, GuardReleasesOnScopeExit) {
  SpinLock lock;
  {
    SpinLockGuard g(lock);
    EXPECT_FALSE(lock.try_lock());
  }
  ASSERT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(StreamCipherTest, IsAnInvolution) {
  StreamCipher cipher(0xABCDEF);
  uint8_t data[64];
  for (size_t i = 0; i < sizeof(data); ++i) data[i] = static_cast<uint8_t>(i);
  uint8_t original[64];
  std::memcpy(original, data, sizeof(data));
  cipher.Apply(data, sizeof(data));
  EXPECT_NE(0, std::memcmp(data, original, sizeof(data)));
  cipher.Apply(data, sizeof(data));
  EXPECT_EQ(0, std::memcmp(data, original, sizeof(data)));
}

TEST(StreamCipherTest, DifferentKeysDifferentStreams) {
  uint8_t a[32] = {}, b[32] = {};
  StreamCipher(1).Apply(a, sizeof(a));
  StreamCipher(2).Apply(b, sizeof(b));
  EXPECT_NE(0, std::memcmp(a, b, sizeof(a)));
}

TEST(StreamCipherTest, HandlesUnalignedLengths) {
  for (size_t len : {1, 3, 7, 9, 63}) {
    std::vector<uint8_t> buf(len, 0x5A);
    const std::vector<uint8_t> orig = buf;
    StreamCipher cipher(42);
    cipher.Apply(buf.data(), len);
    cipher.Apply(buf.data(), len);
    EXPECT_EQ(buf, orig) << len;
  }
}

}  // namespace
}  // namespace mv3c
