// Garbage collection and version-chain maintenance tests: grace-period
// reclamation, recently-committed list trimming against active readers,
// and chain truncation — including the regression case where an
// uncommitted version sits below a committed one under kAllowMultiple.

#include <gtest/gtest.h>

#include "mvcc/table.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"
#include "mvcc/version_arena.h"

namespace mv3c {
namespace {

struct Row {
  int64_t v = 0;
};
using TestTable = Table<uint64_t, Row>;

class GcTest : public ::testing::Test {
 protected:
  GcTest() : table_("t", 64) {}

  void Commit(Transaction& t) {
    ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }

  void SeedAndCommit(uint64_t key, int64_t v) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    ASSERT_EQ(t.Insert(table_, key, Row{v}), WriteStatus::kOk);
    Commit(t);
  }

  void UpdateAndCommit(uint64_t key, int64_t v) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    ASSERT_EQ(t.Update(table_, table_.Find(key), Row{v}, ColumnMask::All(),
                       false, WwPolicy::kFailFast),
              WriteStatus::kOk);
    Commit(t);
  }

  TransactionManager mgr_;
  TestTable table_;
};

TEST_F(GcTest, RetiredNodesSurviveWhileReaderIsActive) {
  SeedAndCommit(1, 0);
  Transaction reader(&mgr_);
  mgr_.Begin(&reader);
  // Rolled-back versions are retired but must not be freed while the
  // reader (started before the rollback) is active.
  Transaction w(&mgr_);
  mgr_.Begin(&w);
  ASSERT_EQ(w.Update(table_, table_.Find(1), Row{9}, ColumnMask::All(),
                     false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  w.RollbackWrites();
  mgr_.FinishAborted(&w);
  EXPECT_EQ(mgr_.gc().PendingCount(), 1u);
  mgr_.CollectGarbage();
  // The rolled-back version stays pending — the reader pins its grace
  // period. (The collection pass may additionally retire the seed's RC
  // record, which the reader does not need for validation.)
  EXPECT_GE(mgr_.gc().PendingCount(), 1u);
  mgr_.CommitReadOnly(&reader);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();  // second pass frees what the first retired
  EXPECT_EQ(mgr_.gc().PendingCount(), 0u);
}

TEST_F(GcTest, RcListKeptWhileValidatorMightNeedIt) {
  SeedAndCommit(1, 0);
  Transaction old_txn(&mgr_);
  mgr_.Begin(&old_txn);
  for (int i = 1; i <= 10; ++i) UpdateAndCommit(1, i);
  EXPECT_GE(mgr_.RecentlyCommittedLength(), 10u);
  mgr_.CollectGarbage();
  // old_txn started before those commits; they must stay validatable.
  EXPECT_GE(mgr_.RecentlyCommittedLength(), 10u);
  mgr_.CommitReadOnly(&old_txn);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();  // second pass frees what the first retired
  EXPECT_LE(mgr_.RecentlyCommittedLength(), 1u);
}

TEST_F(GcTest, TruncationPreservesUncommittedBelowCommitted) {
  // Regression: under kAllowMultiple, T1 pushes a version, T2 pushes above
  // it and commits in place; T1's uncommitted version now sits BELOW a
  // committed one. Chain truncation must skip it.
  table_.set_ww_policy(WwPolicy::kAllowMultiple);
  SeedAndCommit(1, 0);
  auto* obj = table_.Find(1);

  Transaction t1(&mgr_);
  mgr_.Begin(&t1);
  ASSERT_EQ(t1.Update(table_, obj, Row{111}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  Transaction t2(&mgr_);
  mgr_.Begin(&t2);
  ASSERT_EQ(t2.Update(table_, obj, Row{222}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  Commit(t2);  // commits in place, above t1's uncommitted version

  // Force truncation with a watermark beyond t2's commit.
  size_t cut = obj->TruncateOlderThan(
      mgr_.OldestActiveStart(), [this](VersionBase* v) {
        mgr_.gc().RetireVersion(v, mgr_.CurrentEra());
      });
  (void)cut;
  // t1's version must still be linked and readable by t1.
  const auto* own = obj->ReadVisible(t1.start_ts(), t1.txn_id());
  ASSERT_NE(own, nullptr);
  EXPECT_EQ(own->data().v, 111);
  // And t1 can still roll back without tripping the unlink check.
  t1.RollbackWrites();
  mgr_.FinishAborted(&t1);
}

TEST_F(GcTest, TruncationKeepsNewestCommittedBelowWatermark) {
  SeedAndCommit(1, 0);
  auto* obj = table_.Find(1);
  Transaction pinned(&mgr_);
  mgr_.Begin(&pinned);
  const Timestamp pin_start = pinned.start_ts();
  for (int i = 1; i <= 10; ++i) UpdateAndCommit(1, i);
  // Truncate with the pinned reader's start as watermark: the version it
  // sees (v=0, the newest committed below its start) must survive.
  obj->TruncateOlderThan(pin_start, [this](VersionBase* v) {
    mgr_.gc().RetireVersion(v, mgr_.CurrentEra());
  });
  const auto* visible = obj->ReadVisible(pin_start, 0);
  ASSERT_NE(visible, nullptr);
  EXPECT_EQ(visible->data().v, 0);
  mgr_.CommitReadOnly(&pinned);
}

TEST_F(GcTest, InlineTruncationBoundsHotChains) {
  SeedAndCommit(1, 0);
  auto* obj = table_.Find(1);
  for (int i = 0; i < 500; ++i) UpdateAndCommit(1, i);
  // The push path truncates once the approximate length passes the
  // threshold; the chain must stay well below the raw update count.
  EXPECT_LT(obj->ChainLength(), 100u);
}

TEST_F(GcTest, SlabRetirementAcrossSlabBoundary) {
  // ISSUE 2 satellite: a single transaction's write burst spans multiple
  // 64 KiB slabs (a Version<Row> here is ~80 bytes, so ~800 fit per slab);
  // after rollback and a full grace period, the interior slabs — sealed and
  // fully drained — must retire, while the still-active bump target stays.
  const auto before = mgr_.arena().snapshot();
  constexpr int kRows = 2500;
  Transaction w(&mgr_);
  mgr_.Begin(&w);
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(w.Insert(table_, 1000 + i, Row{i}), WriteStatus::kOk);
  }
  if (kVersionArenaEnabled) {
    EXPECT_GE(mgr_.arena().snapshot().slabs_created,
              before.slabs_created + 2)
        << "burst must straddle at least one slab boundary";
  }
  w.RollbackWrites();
  mgr_.FinishAborted(&w);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();  // second pass frees what the first retired
  EXPECT_EQ(mgr_.gc().PendingCount(), 0u);
  if (kVersionArenaEnabled) {
    const auto after = mgr_.arena().snapshot();
    EXPECT_GE(after.frees, before.frees + kRows);
    EXPECT_GE(after.slabs_retired, before.slabs_retired + 1);
    EXPECT_EQ(after.deferred_slabs, 0u);
  }
}

TEST_F(GcTest, LongRunningReaderPinsSlabRetirement) {
  // ISSUE 2 satellite: the epoch watermark is the reclamation contract.
  // While a reader that started before a write burst's rollback is active,
  // no version from that burst may be freed — and therefore no slab it
  // occupies may retire. Once the reader finishes, the backlog drains and
  // the sealed slabs retire.
  SeedAndCommit(1, 0);
  Transaction reader(&mgr_);
  mgr_.Begin(&reader);
  const auto before = mgr_.arena().snapshot();
  constexpr int kRows = 3000;
  Transaction w(&mgr_);
  mgr_.Begin(&w);
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(w.Insert(table_, 2000 + i, Row{i}), WriteStatus::kOk);
  }
  w.RollbackWrites();
  mgr_.FinishAborted(&w);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();
  EXPECT_GE(mgr_.gc().PendingCount(), static_cast<size_t>(kRows));
  if (kVersionArenaEnabled) {
    const auto mid = mgr_.arena().snapshot();
    EXPECT_EQ(mid.frees, before.frees) << "reader must pin every version";
    EXPECT_EQ(mid.slabs_retired, before.slabs_retired)
        << "pinned versions must pin their slabs";
  }
  mgr_.CommitReadOnly(&reader);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();  // second pass frees what the first retired
  EXPECT_EQ(mgr_.gc().PendingCount(), 0u);
  if (kVersionArenaEnabled) {
    const auto after = mgr_.arena().snapshot();
    EXPECT_GE(after.frees, before.frees + kRows);
    EXPECT_GE(after.slabs_retired, before.slabs_retired + 1);
  }
}

TEST_F(GcTest, CollectAllOnQuiescentSystemFreesEverything) {
  SeedAndCommit(1, 0);
  for (int i = 0; i < 64; ++i) UpdateAndCommit(1, i);
  mgr_.CollectGarbage();
  mgr_.CollectGarbage();
  EXPECT_EQ(mgr_.gc().PendingCount(), 0u);
  EXPECT_LE(mgr_.RecentlyCommittedLength(), 1u);
}

}  // namespace
}  // namespace mv3c
