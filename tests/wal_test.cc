// WAL core tests: record/block framing roundtrips, the LogManager's
// group-commit lifecycle (flush, durable-epoch publication, sync/async
// ack, segment rotation), and ReplayLogDir against hand-built and
// manager-written logs.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "wal/log_manager.h"
#include "wal/recovery.h"
#include "wal/wal_format.h"

namespace mv3c::wal {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test log directory under the gtest temp root.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  WalConfig Config() {
    WalConfig c;
    c.dir = dir_.string();
    return c;
  }

  fs::path dir_;
};

RecordHeader MakeHeader(uint32_t table, uint64_t ts, uint32_t key_bytes,
                        uint32_t val_bytes,
                        RecordType type = RecordType::kUpsert) {
  RecordHeader h{};
  h.table_id = table;
  h.commit_ts = ts;
  h.column_mask = ~0ull;
  h.key_bytes = key_bytes;
  h.val_bytes = val_bytes;
  h.type = static_cast<uint8_t>(type);
  return h;
}

TEST_F(WalTest, RecordRoundtrip) {
  std::vector<uint8_t> out;
  const uint64_t key = 42;
  const double val = 3.25;
  AppendRecord(out, MakeHeader(7, 99, sizeof(key), sizeof(val)), &key, &val);
  ASSERT_EQ(out.size(), sizeof(RecordHeader) + sizeof(key) + sizeof(val));

  RecordHeader h;
  std::memcpy(&h, out.data(), sizeof(h));
  EXPECT_EQ(h.table_id, 7u);
  EXPECT_EQ(h.commit_ts, 99u);
  EXPECT_TRUE(RecordCrcOk(out.data(), h));

  // Any flipped bit — header or payload — must be detected. RecordCrcOk's
  // contract requires the lengths to be in bounds (recovery checks them
  // against the block payload first), so mirror that: a flip that lands in
  // a length field is caught by the bounds check, everything else by CRC.
  for (size_t i = 4; i < out.size(); i += 9) {
    out[i] ^= 0x01;
    std::memcpy(&h, out.data(), sizeof(h));
    const bool lengths_ok =
        sizeof(RecordHeader) + static_cast<size_t>(h.key_bytes) +
            static_cast<size_t>(h.val_bytes) ==
        out.size();
    if (lengths_ok) {
      EXPECT_FALSE(RecordCrcOk(out.data(), h)) << "flip at " << i;
    }
    out[i] ^= 0x01;
  }
}

TEST_F(WalTest, SegmentAndBlockHeaderValidation) {
  const SegmentHeader sh = MakeSegmentHeader();
  EXPECT_TRUE(ValidSegmentHeader(sh));
  SegmentHeader bad = sh;
  bad.format_version = 2;
  EXPECT_FALSE(ValidSegmentHeader(bad));

  BlockHeader bh{};
  bh.magic = kBlockMagic;
  bh.epoch = 5;
  bh.payload_bytes = 128;
  bh.n_records = 3;
  bh.header_crc = BlockHeaderCrc(bh);
  EXPECT_EQ(bh.header_crc, BlockHeaderCrc(bh));  // crc field is excluded
  BlockHeader tampered = bh;
  tampered.epoch = 6;
  EXPECT_NE(tampered.header_crc, BlockHeaderCrc(tampered));
}

/// Appends one single-record transaction for (table, ts, key) and returns
/// the epoch tag.
uint64_t AppendOne(LogManager& lm, LogBuffer* buf, uint32_t table,
                   uint64_t ts, uint64_t key, uint64_t val) {
  return buf->AppendTransaction([&](std::vector<uint8_t>& bytes,
                                    uint32_t& n_records) {
    AppendRecord(bytes, MakeHeader(table, ts, sizeof(key), sizeof(val)),
                 &key, &val);
    ++n_records;
  });
}

TEST_F(WalTest, FlushPublishesDurableEpoch) {
  LogManager lm(Config());
  LogBuffer* buf = lm.CreateBuffer();
  const uint64_t e = AppendOne(lm, buf, 1, 10, 1, 100);
  EXPECT_GE(e, 1u);
  EXPECT_TRUE(lm.WaitDurable(e));
  EXPECT_GE(lm.durable_epoch(), e);
  lm.Stop();

  // The record comes back via replay.
  std::vector<std::pair<uint64_t, uint64_t>> seen;  // (ts, key)
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        uint64_t key;
        std::memcpy(&key, rec.key, sizeof(key));
        seen.emplace_back(rec.header.commit_ts, key);
        return true;
      });
  EXPECT_FALSE(r.torn_tail) << r.stop_reason;
  EXPECT_EQ(r.records_applied, 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, uint64_t>{10, 1}));
}

TEST_F(WalTest, ReplayOrdersByCommitTs) {
  LogManager lm(Config());
  // Two buffers standing in for two workers appending out of ts order.
  LogBuffer* b1 = lm.CreateBuffer();
  LogBuffer* b2 = lm.CreateBuffer();
  AppendOne(lm, b2, 1, 20, 2, 200);
  AppendOne(lm, b1, 1, 10, 1, 100);
  AppendOne(lm, b2, 1, 40, 4, 400);
  AppendOne(lm, b1, 1, 30, 3, 300);
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();

  std::vector<uint64_t> ts_order;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        ts_order.push_back(rec.header.commit_ts);
        return true;
      });
  EXPECT_FALSE(r.torn_tail) << r.stop_reason;
  EXPECT_EQ(ts_order, (std::vector<uint64_t>{10, 20, 30, 40}));
  EXPECT_EQ(r.max_commit_ts, 40u);
}

TEST_F(WalTest, AsyncAckDoesNotBlock) {
  WalConfig c = Config();
  c.ack = WalConfig::Ack::kAsync;
  c.epoch_interval_us = 50 * 1000;  // writer mostly asleep
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();
  const uint64_t e = AppendOne(lm, buf, 1, 10, 1, 100);
  // Must return immediately even though the epoch is not yet durable.
  EXPECT_TRUE(lm.WaitCommitDurable(e));
  lm.Stop();  // final flush makes it durable
  EXPECT_GE(lm.durable_epoch(), e);
}

TEST_F(WalTest, SegmentRotation) {
  WalConfig c = Config();
  c.segment_bytes = 4 * 1024;  // rotate quickly
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();
  uint64_t last = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    last = AppendOne(lm, buf, 1, i + 1, i, i * 10);
    if (i % 32 == 31) {
      ASSERT_TRUE(lm.WaitDurable(last));
    }
  }
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();

  size_t segments = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++segments;
  }
  EXPECT_GE(segments, 2u);

  uint64_t count = 0;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView&) {
        ++count;
        return true;
      });
  EXPECT_FALSE(r.torn_tail) << r.stop_reason;
  EXPECT_EQ(count, 200u);
  EXPECT_EQ(r.segments_scanned, segments);
}

TEST_F(WalTest, UnknownTableIsSkippedNotFatal) {
  LogManager lm(Config());
  LogBuffer* buf = lm.CreateBuffer();
  AppendOne(lm, buf, 1, 10, 1, 100);
  AppendOne(lm, buf, 99, 20, 2, 200);  // no binding for table 99
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();

  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        return rec.header.table_id == 1;
      });
  EXPECT_FALSE(r.torn_tail);
  EXPECT_EQ(r.records_applied, 1u);
  EXPECT_EQ(r.records_skipped_unknown_table, 1u);
}

TEST_F(WalTest, SimulateCrashFreezesTheLog) {
  WalConfig c = Config();
  c.epoch_interval_us = 100 * 1000;  // keep the writer from racing ahead
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();
  AppendOne(lm, buf, 1, 10, 1, 100);
  ASSERT_TRUE(lm.FlushNow());
  const uint64_t durable_before = lm.durable_epoch();
  const uint64_t e2 = AppendOne(lm, buf, 1, 20, 2, 200);  // staged only
  lm.SimulateCrash();
  EXPECT_TRUE(lm.crashed());
  EXPECT_FALSE(lm.WaitDurable(e2));  // released with failure, no hang
  EXPECT_EQ(lm.durable_epoch(), durable_before);
  lm.Stop();

  // Only the pre-crash record survives.
  uint64_t count = 0;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView&) {
        ++count;
        return true;
      });
  EXPECT_EQ(count, 1u);
  EXPECT_FALSE(r.torn_tail) << r.stop_reason;  // clean cut, not torn
}

TEST_F(WalTest, EmptyAndMissingDirectories) {
  const RecoveryReport empty =
      ReplayLogDir(dir_.string(), [](const RecordView&) { return true; });
  EXPECT_EQ(empty.records_applied, 0u);
  EXPECT_FALSE(empty.torn_tail);

  const RecoveryReport missing = ReplayLogDir(
      (dir_ / "nope").string(), [](const RecordView&) { return true; });
  EXPECT_EQ(missing.records_applied, 0u);
}

TEST_F(WalTest, TruncatedTailIsCutAtBlockBoundary) {
  WalConfig c = Config();
  c.partitions = 1;  // the test edits wal-000001.log bytes directly
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();
  AppendOne(lm, buf, 1, 10, 1, 100);
  ASSERT_TRUE(lm.FlushNow());
  AppendOne(lm, buf, 1, 20, 2, 200);
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();

  // Chop bytes off the tail: the second block becomes unreadable, the
  // first must still replay.
  const fs::path seg = dir_ / "wal-000001.log";
  ASSERT_TRUE(fs::exists(seg));
  const uintmax_t full = fs::file_size(seg);
  fs::resize_file(seg, full - 5);

  std::vector<uint64_t> ts;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        ts.push_back(rec.header.commit_ts);
        return true;
      });
  EXPECT_TRUE(r.torn_tail);
  EXPECT_NE(r.stop_reason, "");
  EXPECT_EQ(ts, (std::vector<uint64_t>{10}));
}

TEST_F(WalTest, CorruptPayloadByteInvalidatesWholeBlock) {
  WalConfig c = Config();
  c.partitions = 1;  // the test edits wal-000001.log bytes directly
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();
  AppendOne(lm, buf, 1, 10, 1, 100);
  ASSERT_TRUE(lm.FlushNow());
  AppendOne(lm, buf, 1, 20, 2, 200);
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();

  // Flip one byte in the LAST record's payload area (end of file - 3).
  const fs::path seg = dir_ / "wal-000001.log";
  std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-3, std::ios::end);
  char b;
  f.read(&b, 1);
  f.seekp(-3, std::ios::end);
  b = static_cast<char>(b ^ 0x40);
  f.write(&b, 1);
  f.close();

  std::vector<uint64_t> ts;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        ts.push_back(rec.header.commit_ts);
        return true;
      });
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(ts, (std::vector<uint64_t>{10}));  // first epoch only
}

TEST_F(WalTest, WaitDurableVsStopHammer) {
  // Regression: the old wait predicate woke on stop_requested_ BEFORE the
  // writer's final flush published, so a waiter racing Stop() could
  // spuriously return false for an epoch that final round does make
  // durable. Now waiters are only released by durable publication, crash,
  // or `stopped_` (set after the final round) — so every wait here must
  // succeed, no matter how the race lands.
  for (int iter = 0; iter < 100; ++iter) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    LogManager lm(Config());
    LogBuffer* buf = lm.CreateBuffer();
    // The append happens-before Stop(): the final forced round must flush
    // it, so the racing waiter below may never observe false. (An append
    // racing Stop() itself could legitimately land after the final round
    // and report not-durable — that is not this bug.)
    const uint64_t e = AppendOne(lm, buf, 1, 10, 1, 100);
    bool waited_ok = false;
    std::thread waiter([&] { waited_ok = lm.WaitDurable(e); });
    lm.Stop();
    waiter.join();
    EXPECT_TRUE(waited_ok) << "iteration " << iter;
  }
}

TEST_F(WalTest, SyncWaitCounterCountsOnlyCommitWaits) {
  WalConfig c = Config();
  c.epoch_interval_us = 50 * 1000;  // writer only flushes when kicked
  LogManager lm(c);
  LogBuffer* buf = lm.CreateBuffer();

  // Test/teardown barriers must not register as commit-path group-commit
  // waits, even when they block.
  const uint64_t e1 = AppendOne(lm, buf, 1, 10, 1, 100);
  ASSERT_TRUE(lm.WaitDurable(e1));
  AppendOne(lm, buf, 1, 20, 2, 200);
  ASSERT_TRUE(lm.FlushNow());

  // A commit-path wait that actually blocks counts once...
  const uint64_t e3 = AppendOne(lm, buf, 1, 30, 3, 300);
  ASSERT_TRUE(lm.WaitCommitDurable(e3));
  // ...and the fast path (already durable) does not.
  ASSERT_TRUE(lm.WaitCommitDurable(e3));

  lm.Stop();
  const obs::MetricsSnapshot snap = lm.metrics().Snapshot();
  EXPECT_EQ(snap.Value("wal_sync_waits"), 1u);
}

TEST_F(WalTest, PartitionedStreamsNamingAndHeartbeats) {
  WalConfig c = Config();
  c.partitions = 4;
  LogManager lm(c);
  ASSERT_EQ(lm.partition_count(), 4u);
  LogBuffer* buf = lm.CreateBuffer(/*lane_hint=*/2);
  const uint64_t e = AppendOne(lm, buf, 1, 10, 1, 100);
  ASSERT_TRUE(lm.WaitDurable(e));
  lm.Stop();

  // Four per-partition streams on disk, none with the legacy name.
  for (uint32_t p = 0; p < 4; ++p) {
    char name[32];
    std::snprintf(name, sizeof(name), "wal-p%02u-000001.log", p);
    EXPECT_TRUE(fs::exists(dir_ / name)) << name;
  }
  EXPECT_FALSE(fs::exists(dir_ / "wal-000001.log"));

  // Replay merges the streams: the record comes back, the idle partitions'
  // heartbeat blocks cover the flushed epoch (durable cut reaches the
  // record's tag even though three streams carried no data).
  std::vector<uint64_t> ts;
  const RecoveryReport r =
      ReplayLogDir(dir_.string(), [&](const RecordView& rec) {
        ts.push_back(rec.header.commit_ts);
        return true;
      });
  EXPECT_FALSE(r.torn_tail) << r.stop_reason;
  EXPECT_EQ(r.streams, 4u);
  EXPECT_GE(r.durable_cut, e);
  EXPECT_EQ(ts, (std::vector<uint64_t>{10}));
}

TEST_F(WalTest, MetricsCounters) {
  LogManager lm(Config());
  LogBuffer* buf = lm.CreateBuffer();
  for (uint64_t i = 0; i < 10; ++i) AppendOne(lm, buf, 1, i + 1, i, i);
  ASSERT_TRUE(lm.FlushNow());
  lm.Stop();
  const obs::MetricsSnapshot snap = lm.metrics().Snapshot();
  EXPECT_GT(snap.Value("wal_bytes"), 0u);
  EXPECT_EQ(snap.Value("wal_records"), 10u);
  EXPECT_GT(snap.Value("epochs_flushed"), 0u);
  EXPECT_GT(snap.Value("wal_segments"), 0u);
  EXPECT_EQ(snap.Value("wal_flush_failures"), 0u);
}

}  // namespace
}  // namespace mv3c::wal
