// Core MVCC substrate tests: version visibility (Definition 2.3), chain
// surgery, snapshot reads, commit publication (Definition 2.2 and the
// §2.4.1 move), and the timestamp machinery.

#include <gtest/gtest.h>

#include "mvcc/table.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"

namespace mv3c {
namespace {

struct AccountRow {
  int64_t balance = 0;
};

using AccountTable = Table<int64_t, AccountRow>;

class MvccCoreTest : public ::testing::Test {
 protected:
  MvccCoreTest() : table_("account", 64) {}

  /// Inserts and commits a single row in its own transaction.
  void SeedRow(int64_t key, int64_t balance) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    ASSERT_EQ(t.Insert(table_, key, AccountRow{balance}),
              WriteStatus::kOk);
    ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }

  int64_t ReadBalance(Transaction& t, int64_t key) {
    auto* obj = table_.Find(key);
    EXPECT_NE(obj, nullptr);
    const auto* v = t.ReadVersion(table_, obj);
    EXPECT_NE(v, nullptr);
    return v->data().balance;
  }

  TransactionManager mgr_;
  AccountTable table_;
};

TEST_F(MvccCoreTest, InsertThenReadOwnWrite) {
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  AccountTable::Object* obj = nullptr;
  ASSERT_EQ(t.Insert(table_, 1, AccountRow{100}, &obj),
            WriteStatus::kOk);
  const auto* v = t.ReadVersion(table_, obj);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data().balance, 100);
  ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
}

TEST_F(MvccCoreTest, UncommittedVersionInvisibleToOthers) {
  SeedRow(1, 100);
  Transaction writer(&mgr_);
  mgr_.Begin(&writer);
  auto* obj = table_.Find(1);
  ASSERT_EQ(writer.Update(table_, obj, AccountRow{200}, ColumnMask::All(),
                          false, WwPolicy::kFailFast),
            WriteStatus::kOk);

  Transaction reader(&mgr_);
  mgr_.Begin(&reader);
  EXPECT_EQ(ReadBalance(reader, 1), 100);  // writer's version is invisible
  EXPECT_EQ(ReadBalance(writer, 1), 200);  // own write is visible

  writer.RollbackWrites();
  mgr_.FinishAborted(&writer);
  mgr_.CommitReadOnly(&reader);
}

TEST_F(MvccCoreTest, SnapshotIgnoresLaterCommits) {
  SeedRow(1, 100);
  Transaction old_reader(&mgr_);
  mgr_.Begin(&old_reader);

  // A later transaction commits an update.
  Transaction writer(&mgr_);
  mgr_.Begin(&writer);
  auto* obj = table_.Find(1);
  ASSERT_EQ(writer.Update(table_, obj, AccountRow{200}, ColumnMask::All(),
                          false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  ASSERT_TRUE(mgr_.TryCommit(&writer, [](CommittedRecord*) { return true; }));

  // The old snapshot still sees the old balance.
  EXPECT_EQ(ReadBalance(old_reader, 1), 100);
  // A fresh transaction sees the new one.
  Transaction fresh(&mgr_);
  mgr_.Begin(&fresh);
  EXPECT_EQ(ReadBalance(fresh, 1), 200);
  mgr_.CommitReadOnly(&fresh);
  mgr_.CommitReadOnly(&old_reader);
}

TEST_F(MvccCoreTest, FailFastWwConflictOnForeignUncommitted) {
  SeedRow(1, 100);
  Transaction t1(&mgr_);
  Transaction t2(&mgr_);
  mgr_.Begin(&t1);
  mgr_.Begin(&t2);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t1.Update(table_, obj, AccountRow{1}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  EXPECT_EQ(t2.Update(table_, obj, AccountRow{2}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kWwConflict);
  t1.RollbackWrites();
  mgr_.FinishAborted(&t1);
  mgr_.FinishAborted(&t2);
}

TEST_F(MvccCoreTest, FailFastWwConflictOnNewerCommitted) {
  SeedRow(1, 100);
  Transaction t1(&mgr_);
  mgr_.Begin(&t1);
  // Another transaction commits an update after t1 started.
  Transaction t2(&mgr_);
  mgr_.Begin(&t2);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t2.Update(table_, obj, AccountRow{300}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  ASSERT_TRUE(mgr_.TryCommit(&t2, [](CommittedRecord*) { return true; }));
  // t1 now hits a committed version newer than its start.
  EXPECT_EQ(t1.Update(table_, obj, AccountRow{1}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kWwConflict);
  mgr_.FinishAborted(&t1);
}

TEST_F(MvccCoreTest, AllowMultipleUncommittedVersionsCoexist) {
  SeedRow(1, 100);
  table_.set_ww_policy(WwPolicy::kAllowMultiple);
  Transaction t1(&mgr_);
  Transaction t2(&mgr_);
  mgr_.Begin(&t1);
  mgr_.Begin(&t2);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t1.Update(table_, obj, AccountRow{101}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  ASSERT_EQ(t2.Update(table_, obj, AccountRow{102}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  // Each sees its own version.
  EXPECT_EQ(ReadBalance(t1, 1), 101);
  EXPECT_EQ(ReadBalance(t2, 1), 102);
  // Commit in reverse push order: t1 first, then t2; the move keeps the
  // committed suffix ordered by commit timestamp.
  ASSERT_TRUE(mgr_.TryCommit(&t1, [](CommittedRecord*) { return true; }));
  ASSERT_TRUE(mgr_.TryCommit(&t2, [](CommittedRecord*) { return true; }));
  Transaction fresh(&mgr_);
  mgr_.Begin(&fresh);
  EXPECT_EQ(ReadBalance(fresh, 1), 102);  // later committer wins
  mgr_.CommitReadOnly(&fresh);
}

TEST_F(MvccCoreTest, CommitMoveRestoresTimestampOrder) {
  SeedRow(1, 100);
  table_.set_ww_policy(WwPolicy::kAllowMultiple);
  // t1 pushes first (deeper in the chain), t2 pushes second, but t2
  // commits FIRST. Without the §2.4.1 move, t1's later commit would leave
  // the chain ordered t2(newer position, older ts) above t1 — wrong.
  Transaction t1(&mgr_);
  Transaction t2(&mgr_);
  mgr_.Begin(&t1);
  mgr_.Begin(&t2);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t1.Update(table_, obj, AccountRow{111}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  ASSERT_EQ(t2.Update(table_, obj, AccountRow{222}, ColumnMask::All(), true, WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  ASSERT_TRUE(mgr_.TryCommit(&t2, [](CommittedRecord*) { return true; }));
  ASSERT_TRUE(mgr_.TryCommit(&t1, [](CommittedRecord*) { return true; }));
  // t1 committed last, so a fresh reader must see t1's value.
  Transaction fresh(&mgr_);
  mgr_.Begin(&fresh);
  EXPECT_EQ(ReadBalance(fresh, 1), 111);
  mgr_.CommitReadOnly(&fresh);
}

TEST_F(MvccCoreTest, OnlyNewestVersionPerObjectSurvivesCommit) {
  SeedRow(1, 100);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t.Update(table_, obj, AccountRow{150}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  ASSERT_EQ(t.Update(table_, obj, AccountRow{175}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  EXPECT_EQ(ReadBalance(t, 1), 175);  // own newest
  Timestamp cts = 0;
  ASSERT_TRUE(
      mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }, &cts));
  // The recently-committed record carries exactly one version for the
  // object (Definition 2.2).
  CommittedRecord* rec = mgr_.rc_head();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->commit_ts, cts);
  ASSERT_EQ(rec->versions.size(), 1u);
  EXPECT_EQ(static_cast<const Version<AccountRow>*>(rec->versions[0])
                ->data()
                .balance,
            175);
}

TEST_F(MvccCoreTest, DeleteMakesRowInvisibleAndReinsertWorks) {
  SeedRow(1, 100);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t.Delete(table_, obj), WriteStatus::kOk);
  EXPECT_EQ(t.ReadVersion(table_, obj), nullptr);  // tombstone hides row
  ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));

  Transaction t2(&mgr_);
  mgr_.Begin(&t2);
  EXPECT_EQ(table_.Find(1)->ReadVisible(t2.start_ts(), t2.txn_id()), nullptr);
  // Re-insert over the tombstone.
  ASSERT_EQ(t2.Insert(table_, 1, AccountRow{500}), WriteStatus::kOk);
  ASSERT_TRUE(mgr_.TryCommit(&t2, [](CommittedRecord*) { return true; }));
  Transaction t3(&mgr_);
  mgr_.Begin(&t3);
  EXPECT_EQ(ReadBalance(t3, 1), 500);
  mgr_.CommitReadOnly(&t3);
}

TEST_F(MvccCoreTest, DuplicateInsertRejected) {
  SeedRow(1, 100);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  EXPECT_EQ(t.Insert(table_, 1, AccountRow{5}),
            WriteStatus::kDuplicateKey);
  mgr_.FinishAborted(&t);
}

TEST_F(MvccCoreTest, RollbackRestoresPreviousState) {
  SeedRow(1, 100);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  auto* obj = table_.Find(1);
  ASSERT_EQ(t.Update(table_, obj, AccountRow{999}, ColumnMask::All(), false, WwPolicy::kFailFast),
            WriteStatus::kOk);
  t.RollbackWrites();
  mgr_.FinishAborted(&t);
  Transaction fresh(&mgr_);
  mgr_.Begin(&fresh);
  EXPECT_EQ(ReadBalance(fresh, 1), 100);
  mgr_.CommitReadOnly(&fresh);
  EXPECT_EQ(obj->ChainLength(), 1u);
}

TEST_F(MvccCoreTest, ChainTruncationReclaimsOldVersions) {
  SeedRow(1, 0);
  auto* obj = table_.Find(1);
  // Push enough committed versions to trip the inline truncation.
  for (int i = 1; i <= 100; ++i) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    ASSERT_EQ(t.Update(table_, obj, AccountRow{i}, ColumnMask::All(), false, WwPolicy::kFailFast),
              WriteStatus::kOk);
    ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }
  EXPECT_LT(obj->ChainLength(), 100u);
  Transaction fresh(&mgr_);
  mgr_.Begin(&fresh);
  EXPECT_EQ(ReadBalance(fresh, 1), 100);
  mgr_.CommitReadOnly(&fresh);
}

TEST_F(MvccCoreTest, GarbageCollectionFreesRetiredNodes) {
  SeedRow(1, 0);
  auto* obj = table_.Find(1);
  for (int i = 1; i <= 100; ++i) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    ASSERT_EQ(t.Update(table_, obj, AccountRow{i}, ColumnMask::All(), false, WwPolicy::kFailFast),
              WriteStatus::kOk);
    ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }
  EXPECT_GT(mgr_.gc().PendingCount(), 0u);
  mgr_.CollectGarbage();
  EXPECT_EQ(mgr_.gc().PendingCount(), 0u);
  EXPECT_LE(mgr_.RecentlyCommittedLength(), 1u);
}

TEST_F(MvccCoreTest, TimestampsDistinguishCommittedFromUncommitted) {
  EXPECT_TRUE(IsTxnId(kTxnIdBase + 5));
  EXPECT_FALSE(IsTxnId(42));
  EXPECT_FALSE(IsTxnId(kDeadVersion));
  EXPECT_TRUE(IsCommitTs(42));
  EXPECT_FALSE(IsCommitTs(kTxnIdBase));
}

TEST_F(MvccCoreTest, OldestActiveStartTracksActiveTransactions) {
  EXPECT_EQ(mgr_.OldestActiveStart(), TransactionManager::kIdleSlot);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  EXPECT_EQ(mgr_.OldestActiveStart(), t.start_ts());
  Transaction t2(&mgr_);
  mgr_.Begin(&t2);
  EXPECT_EQ(mgr_.OldestActiveStart(), t.start_ts());  // min of the two
  mgr_.CommitReadOnly(&t);
  EXPECT_EQ(mgr_.OldestActiveStart(), t2.start_ts());
  mgr_.CommitReadOnly(&t2);
  EXPECT_EQ(mgr_.OldestActiveStart(), TransactionManager::kIdleSlot);
}

}  // namespace
}  // namespace mv3c
