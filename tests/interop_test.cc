// Deterministic §3 interoperability tests: MV3C and OMVCC transactions
// against one TransactionManager. The only cross-engine interface is the
// recently-committed list, so each engine must detect the other's commits
// in validation, and blind-write semantics must hold across engines.

#include <gtest/gtest.h>

#include "workloads/banking.h"

namespace mv3c {
namespace {

using banking::AccountRow;
using banking::BankingDb;

class InteropTest : public ::testing::Test {
 protected:
  InteropTest() : db_(&mgr_, 16, 1000) { db_.Load(); }

  TransactionManager mgr_;
  BankingDb db_;
};

TEST_F(InteropTest, Mv3cDetectsOmvccCommit) {
  // MV3C transaction reads the fee account, then an OMVCC transaction
  // commits a change to it: the MV3C validation must fail and repair.
  Mv3cExecutor victim(&mgr_);
  victim.Reset(banking::Mv3cTransferMoney(db_, {1, 2, 200, true}));
  victim.Begin();
  OmvccExecutor intruder(&mgr_);
  ASSERT_EQ(intruder.Run(banking::OmvccTransferMoney(db_, {3, 4, 300, true})),
            StepResult::kCommitted);
  ASSERT_EQ(victim.Step(), StepResult::kNeedsRetry);
  EXPECT_EQ(victim.stats().validation_failures, 1u);
  ASSERT_EQ(victim.Step(), StepResult::kCommitted);
  EXPECT_EQ(victim.stats().reexecuted_closures, 1u);  // fee predicate only
  EXPECT_EQ(db_.BalanceOf(BankingDb::kFeeAccount), 2 + 3);
  EXPECT_EQ(db_.TotalBalance(), 16 * 1000);
}

TEST_F(InteropTest, OmvccDetectsMv3cCommit) {
  OmvccExecutor victim(&mgr_);
  victim.Reset(banking::OmvccTransferMoney(db_, {5, 6, 150, true}));
  victim.Begin();
  Mv3cExecutor intruder(&mgr_);
  ASSERT_EQ(intruder.Run(banking::Mv3cTransferMoney(db_, {7, 8, 250, true})),
            StepResult::kCommitted);
  StepResult r = victim.Step();
  // OMVCC aborts and restarts (validation failure or WW fail-fast on the
  // fee account, depending on interleaving); either way it converges.
  int guard = 0;
  while (r == StepResult::kNeedsRetry) {
    r = victim.Step();
    ASSERT_LT(++guard, 10);
  }
  ASSERT_EQ(r, StepResult::kCommitted);
  // Fees: 150 -> 1 (integer division), 250 -> 2.
  EXPECT_EQ(db_.BalanceOf(BankingDb::kFeeAccount), 1 + 2);
  EXPECT_EQ(db_.TotalBalance(), 16 * 1000);
}

TEST_F(InteropTest, CommitTimestampsInterleaveAcrossEngines) {
  // Commit timestamps come from the shared sequence, so cross-engine
  // commits are totally ordered.
  Timestamp last = 0;
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      Mv3cExecutor e(&mgr_);
      e.MustRun(banking::Mv3cTransferMoney(
          db_, {1 + i % 8, 9 + i % 7, 10 + i, false}));
      EXPECT_GT(e.last_commit_ts(), last);
      last = e.last_commit_ts();
    } else {
      OmvccExecutor e(&mgr_);
      e.MustRun(banking::OmvccTransferMoney(
          db_, {1 + i % 8, 9 + i % 7, 10 + i, false}));
      EXPECT_GT(e.last_commit_ts(), last);
      last = e.last_commit_ts();
    }
  }
  EXPECT_EQ(db_.TotalBalance(), 16 * 1000);
}

TEST_F(InteropTest, Mv3cBlindWriteInvisibleToOmvccValidationOfOtherColumns) {
  // An MV3C blind date-stamp on the fee account must not invalidate an
  // OMVCC transfer that only monitors balances (§4.1 across engines).
  OmvccExecutor transfer(&mgr_);
  transfer.Reset(banking::OmvccTransferMoney(db_, {2, 3, 100, false}));
  transfer.Begin();
  Mv3cExecutor stamp(&mgr_);
  ASSERT_EQ(stamp.Run([&](Mv3cTransaction& t) {
              return t.BlindUpdate(db_.accounts, BankingDb::kFeeAccount,
                                   banking::kDateMask,
                                   [](AccountRow& r) { r.last_date = 42; });
            }),
            StepResult::kCommitted);
  ASSERT_EQ(transfer.Step(), StepResult::kCommitted);
  EXPECT_EQ(transfer.stats().validation_failures, 0u);
}

}  // namespace
}  // namespace mv3c
