// Partitioned-WAL recovery equivalence: the same deterministic history
// written with partitions ∈ {1, 2, 4} must recover to digest-identical
// state — and the partitioned recoveries must match the single-stream
// genesis replay exactly — on all four workloads. partitions=1 is the
// legacy on-disk layout, so digest equality here pins the partitioned
// protocol (per-partition streams, heartbeat blocks, min-epoch durable
// cut, cross-stream commit_ts merge) to the behavior the single-writer
// log always had. A multi-worker banking case additionally spreads real
// data (not just heartbeats) across streams via per-thread TID lanes.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "silo/silo_engine.h"
#include "sv/sv_executor.h"
#include "wal/catalog.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kPartitionCounts[] = {1, 2, 4};

class WalPartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_partition_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// One log directory per partition count under the test root.
  wal::WalConfig Config(uint32_t partitions) {
    wal::WalConfig c;
    c.dir = (dir_ / ("p" + std::to_string(partitions))).string();
    c.ack = wal::WalConfig::Ack::kAsync;
    c.partitions = partitions;
    return c;
  }

  fs::path dir_;
};

/// Asserts one workload's digests agree across partition counts.
/// `run(config)` executes the deterministic history WAL-on and returns the
/// live digests; `recover(dir)` replays the directory into fresh tables
/// and returns the recovered digests. Runs with more partitions than
/// data-carrying buffers exercise heartbeat blocks; the digests must not
/// care.
template <typename RunFn, typename RecoverFn>
void RunAcrossPartitionCounts(
    const std::function<wal::WalConfig(uint32_t)>& config, RunFn run,
    RecoverFn recover) {
  std::vector<std::vector<wal::TableDigest>> recovered;
  for (const uint32_t partitions : kPartitionCounts) {
    const wal::WalConfig c = config(partitions);
    const std::vector<wal::TableDigest> live = run(c);
    const std::vector<wal::TableDigest> replayed = recover(c.dir);
    ASSERT_EQ(live.size(), replayed.size());
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(replayed[i], live[i])
          << "partitions=" << partitions << " table " << i
          << ": recovery lost or invented state";
    }
    recovered.push_back(replayed);
  }
  // Partitioned recoveries vs the single-stream genesis replay.
  for (size_t p = 1; p < recovered.size(); ++p) {
    ASSERT_EQ(recovered[p].size(), recovered[0].size());
    for (size_t i = 0; i < recovered[0].size(); ++i) {
      EXPECT_EQ(recovered[p][i], recovered[0][i])
          << "partitions=" << kPartitionCounts[p] << " table " << i
          << " diverged from the single-stream replay";
    }
  }
}

// --- Banking (MV3C, windowed driver with repairs) -------------------------

TEST_F(WalPartitionTest, BankingMv3c) {
  constexpr int64_t kAccounts = 200;
  constexpr int64_t kInitial = 1'000'000;
  RunAcrossPartitionCounts(
      [&](uint32_t p) { return Config(p); },
      [&](const wal::WalConfig& c) {
        TransactionManager mgr;
        mgr.EnableWal(c);
        banking::BankingDb db(&mgr, kAccounts, kInitial);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        db.Load();
        banking::TransferGenerator gen(kAccounts, 100, /*seed=*/42);
        std::vector<banking::TransferParams> stream;
        for (int i = 0; i < 1500; ++i) stream.push_back(gen.Next());
        WindowDriver<Mv3cExecutor> driver(
            8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
            [&] { mgr.CollectGarbage(); });
        const DriveResult res =
            driver.Run(CountedSource<Mv3cExecutor::Program>(
                stream.size(), [&](uint64_t i) {
                  return banking::Mv3cTransferMoney(db, stream[i]);
                }));
        EXPECT_GT(res.committed, 750u);
        EXPECT_TRUE(mgr.wal()->FlushNow());
        EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
        mgr.DisableWal();
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.accounts)};
      },
      [&](const std::string& log_dir) {
        TransactionManager mgr;
        banking::BankingDb db(&mgr, kAccounts, kInitial);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        const wal::RecoveryReport rep = cat.Recover(log_dir);
        EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
        EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.accounts)};
      });
}

// --- Trading (MV3C) -------------------------------------------------------

TEST_F(WalPartitionTest, TradingMv3c) {
  RunAcrossPartitionCounts(
      [&](uint32_t p) { return Config(p); },
      [&](const wal::WalConfig& c) {
        TransactionManager mgr;
        mgr.EnableWal(c);
        trading::TradingDb db(&mgr, 300, 100);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        db.Load();
        trading::TradingGenerator gen(db, 0.8, 70, /*seed=*/13);
        std::vector<trading::TradingGenerator::Txn> stream;
        for (int i = 0; i < 600; ++i) stream.push_back(gen.Next());
        WindowDriver<Mv3cExecutor> driver(
            8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
            [&] { mgr.CollectGarbage(); });
        const DriveResult res =
            driver.Run(CountedSource<Mv3cExecutor::Program>(
                stream.size(), [&](uint64_t i) -> Mv3cExecutor::Program {
                  if (stream[i].is_trade_order) {
                    return trading::Mv3cTradeOrder(db, stream[i].order);
                  }
                  return trading::Mv3cPriceUpdate(db, stream[i].price);
                }));
        EXPECT_GT(res.committed, 0u);
        EXPECT_TRUE(mgr.wal()->FlushNow());
        mgr.DisableWal();
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.securities),
            wal::DigestMvccTable(db.customers),
            wal::DigestMvccTable(db.trades),
            wal::DigestMvccTable(db.trade_lines)};
      },
      [&](const std::string& log_dir) {
        TransactionManager mgr;
        trading::TradingDb db(&mgr, 300, 100);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        const wal::RecoveryReport rep = cat.Recover(log_dir);
        EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.securities),
            wal::DigestMvccTable(db.customers),
            wal::DigestMvccTable(db.trades),
            wal::DigestMvccTable(db.trade_lines)};
      });
}

// --- TATP (MV3C, includes tombstones) -------------------------------------

TEST_F(WalPartitionTest, TatpMv3c) {
  constexpr uint64_t kSubs = 600;
  RunAcrossPartitionCounts(
      [&](uint32_t p) { return Config(p); },
      [&](const wal::WalConfig& c) {
        TransactionManager mgr;
        mgr.EnableWal(c);
        tatp::TatpDb db(&mgr, kSubs);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        db.Load(3);
        tatp::TatpGenerator gen(kSubs, 77);
        Mv3cExecutor e(&mgr);
        uint64_t committed = 0;
        for (int i = 0; i < 1500; ++i) {
          if (e.Run(tatp::Mv3cTatpProgram(db, gen.Next())) ==
              StepResult::kCommitted) {
            ++committed;
          }
        }
        EXPECT_GT(committed, 750u);
        EXPECT_TRUE(mgr.wal()->FlushNow());
        mgr.DisableWal();
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.subscribers),
            wal::DigestMvccTable(db.access_info),
            wal::DigestMvccTable(db.special_facilities),
            wal::DigestMvccTable(db.call_forwarding)};
      },
      [&](const std::string& log_dir) {
        TransactionManager mgr;
        tatp::TatpDb db(&mgr, kSubs);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        const wal::RecoveryReport rep = cat.Recover(log_dir);
        EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
        return std::vector<wal::TableDigest>{
            wal::DigestMvccTable(db.subscribers),
            wal::DigestMvccTable(db.access_info),
            wal::DigestMvccTable(db.special_facilities),
            wal::DigestMvccTable(db.call_forwarding)};
      });
}

// --- TPC-C (single-version Silo; round-robin buffers spread data) ---------

tpcc::TpccScale PartitionScale() {
  tpcc::TpccScale s;
  s.n_warehouses = 1;
  s.n_districts = 4;
  s.n_customers_per_d = 60;
  s.n_items = 200;
  s.preload_orders_per_d = 40;
  s.preload_new_orders_per_d = 15;
  return s;
}

std::vector<wal::TableDigest> DigestSvTpcc(tpcc::SvTpccDb& d) {
  return std::vector<wal::TableDigest>{
      wal::DigestSvTable(d.warehouses),  wal::DigestSvTable(d.districts),
      wal::DigestSvTable(d.customers),   wal::DigestSvTable(d.history),
      wal::DigestSvTable(d.orders),      wal::DigestSvTable(d.new_orders),
      wal::DigestSvTable(d.order_lines), wal::DigestSvTable(d.items),
      wal::DigestSvTable(d.stock)};
}

TEST_F(WalPartitionTest, TpccSilo) {
  const tpcc::TpccScale scale = PartitionScale();
  RunAcrossPartitionCounts(
      [&](uint32_t p) { return Config(p); },
      [&](const wal::WalConfig& c) {
        tpcc::SvTpccDb db(scale);
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        wal::LogManager lm(c);
        SiloEngine engine;
        engine.set_wal(&lm);
        db.Load(7);  // non-transactional: checkpoint-style recovery below
        tpcc::TpccGenerator gen(scale, 23);
        std::vector<tpcc::TpccParams> stream;
        for (int i = 0; i < 300; ++i) stream.push_back(gen.Next());
        // Eight executor contexts create eight round-robin buffers, so the
        // partitioned runs carry real data in every stream.
        WindowDriver<SvExecutor<SiloEngine>> driver(8, [&](...) {
          auto e = std::make_unique<SvExecutor<SiloEngine>>(&engine);
          e->set_wal(&lm);
          return e;
        });
        const DriveResult res = driver.Run(
            CountedSource<SvExecutor<SiloEngine>::Program>(
                stream.size(), [&](uint64_t i) {
                  return tpcc::SvTpccProgram(db, stream[i]);
                }));
        EXPECT_GT(res.committed, 0u);
        EXPECT_TRUE(lm.FlushNow());
        lm.Stop();
        return DigestSvTpcc(db);
      },
      [&](const std::string& log_dir) {
        tpcc::SvTpccDb db(scale);
        db.Load(7);  // same seed, then the log suffix on top
        wal::Catalog cat;
        RegisterWalTables(cat, db);
        const wal::RecoveryReport rep = cat.Recover(log_dir);
        EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
        EXPECT_GT(rep.records_applied, 0u);
        return DigestSvTpcc(db);
      });
}

// --- Multi-worker banking: real data in every partition stream ------------

TEST_F(WalPartitionTest, MultiWorkerBankingSpreadsStreams) {
  // Four OS threads transfer within disjoint account ranges: the final
  // state is deterministic regardless of interleaving, each thread's TID
  // lane binds its buffer to a (mostly distinct) partition, and the
  // per-stream commit timestamps interleave arbitrarily — exactly the
  // cross-stream merge recovery must get right.
  constexpr int64_t kPerThread = 100;
  constexpr int kThreads = 4;
  constexpr int64_t kAccounts = kPerThread * kThreads;
  constexpr int64_t kInitial = 500'000;

  std::vector<wal::TableDigest> recovered;
  for (const uint32_t partitions : kPartitionCounts) {
    const wal::WalConfig c = Config(partitions);
    wal::TableDigest live;
    {
      TransactionManager mgr;
      mgr.EnableWal(c);
      banking::BankingDb db(&mgr, kAccounts, kInitial);
      wal::Catalog cat;
      RegisterWalTables(cat, db);
      db.Load();
      std::vector<std::thread> workers;
      for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          banking::TransferGenerator gen(kPerThread, /*fee=*/0,
                                         /*seed=*/100 + t);
          Mv3cExecutor e(&mgr);
          for (int i = 0; i < 400; ++i) {
            banking::TransferParams p = gen.Next();
            p.from += t * kPerThread;
            p.to += t * kPerThread;
            ASSERT_EQ(e.Run(banking::Mv3cTransferMoney(db, p)),
                      StepResult::kCommitted);
          }
        });
      }
      for (auto& w : workers) w.join();
      ASSERT_TRUE(mgr.wal()->FlushNow());
      EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
      mgr.DisableWal();
      live = wal::DigestMvccTable(db.accounts);
    }

    TransactionManager mgr2;
    banking::BankingDb db2(&mgr2, kAccounts, kInitial);
    wal::Catalog cat2;
    RegisterWalTables(cat2, db2);
    const wal::RecoveryReport rep = cat2.Recover(c.dir);
    EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
    EXPECT_EQ(db2.TotalBalance(), kAccounts * kInitial);
    const wal::TableDigest replayed = wal::DigestMvccTable(db2.accounts);
    EXPECT_EQ(replayed, live) << "partitions=" << partitions;
    recovered.push_back(replayed);
  }
  for (size_t p = 1; p < recovered.size(); ++p) {
    EXPECT_EQ(recovered[p], recovered[0])
        << "partitions=" << kPartitionCounts[p]
        << " diverged from the single-stream replay";
  }
}

}  // namespace
}  // namespace mv3c
