// Multi-version time-travel property test: a pinned reader must see the
// exact database state as of its start timestamp, no matter how much
// history accumulates afterwards (Definition 2.3), and garbage collection
// must never reclaim a version a pinned reader can still reach.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "mvcc/table.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"

namespace mv3c {
namespace {

struct Row {
  int64_t value = 0;
};
using TestTable = Table<uint64_t, Row>;
constexpr uint64_t kKeys = 16;

class VisibilityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisibilityPropertyTest, PinnedReadersSeeTheirSnapshotForever) {
  Xoshiro256 rng(GetParam());
  TransactionManager mgr;
  TestTable table("t", 64);

  // Seed.
  {
    Transaction t(&mgr);
    mgr.Begin(&t);
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_EQ(t.Insert(table, k, Row{0}), WriteStatus::kOk);
    }
    ASSERT_TRUE(mgr.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }

  // Interleave committed writers with pinned readers; after every commit,
  // record the logical state. Readers opened at various points must keep
  // seeing exactly the state recorded at their start.
  struct Pin {
    std::unique_ptr<Transaction> txn;
    std::map<uint64_t, int64_t> expected;
  };
  std::vector<Pin> pins;
  std::map<uint64_t, int64_t> current;
  for (uint64_t k = 0; k < kKeys; ++k) current[k] = 0;

  for (int step = 0; step < 400; ++step) {
    const int action = static_cast<int>(rng.NextBounded(10));
    if (action < 2 && pins.size() < 24) {
      // Open a pinned reader capturing the current logical state.
      Pin pin;
      pin.txn = std::make_unique<Transaction>(&mgr);
      mgr.Begin(pin.txn.get());
      pin.expected = current;
      pins.push_back(std::move(pin));
    } else if (action < 3 && !pins.empty()) {
      // Close a random pin.
      const size_t i = rng.NextBounded(pins.size());
      mgr.CommitReadOnly(pins[i].txn.get());
      pins.erase(pins.begin() + static_cast<long>(i));
      mgr.CollectGarbage();
    } else {
      // Committed update (or delete/reinsert) of a random key.
      const uint64_t k = rng.NextBounded(kKeys);
      Transaction t(&mgr);
      mgr.Begin(&t);
      auto* obj = table.Find(k);
      if (current.count(k) == 0) {
        const int64_t v = static_cast<int64_t>(step) * 100;
        ASSERT_EQ(t.Insert(table, k, Row{v}), WriteStatus::kOk);
        current[k] = v;
      } else if (rng.NextBounded(10) == 0) {
        ASSERT_EQ(t.Delete(table, obj), WriteStatus::kOk);
        current.erase(k);
      } else {
        const int64_t v = static_cast<int64_t>(step);
        ASSERT_EQ(t.Update(table, obj, Row{v}, ColumnMask::All(), false,
                           WwPolicy::kFailFast),
                  WriteStatus::kOk);
        current[k] = v;
      }
      ASSERT_TRUE(mgr.TryCommit(&t, [](CommittedRecord*) { return true; }));
    }

    // Every 16 steps, audit every pinned reader against its snapshot.
    if ((step & 15) == 0) {
      for (const Pin& pin : pins) {
        for (uint64_t k = 0; k < kKeys; ++k) {
          auto* obj = table.Find(k);
          const Version<Row>* v =
              obj == nullptr
                  ? nullptr
                  : obj->ReadVisible(pin.txn->start_ts(), pin.txn->txn_id());
          const auto it = pin.expected.find(k);
          if (it == pin.expected.end()) {
            ASSERT_EQ(v, nullptr)
                << "key " << k << " should be invisible at step " << step;
          } else {
            ASSERT_NE(v, nullptr)
                << "key " << k << " vanished from a pinned snapshot at step "
                << step;
            ASSERT_EQ(v->data().value, it->second) << "key " << k;
          }
        }
      }
    }
  }
  for (Pin& pin : pins) mgr.CommitReadOnly(pin.txn.get());
  mgr.CollectGarbage();
  mgr.CollectGarbage();
  EXPECT_EQ(mgr.gc().PendingCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisibilityPropertyTest,
                         ::testing::Values(3, 77, 991, 20260704));

}  // namespace
}  // namespace mv3c
