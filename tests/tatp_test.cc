// TATP workload tests (paper Appendix C.1): loader population rules, all
// seven transaction types under both engines, the UPDATE_LOCATION blind-
// write asymmetry, and a mixed window run.

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "workloads/tatp.h"

namespace mv3c {
namespace {

using namespace mv3c::tatp;  // NOLINT

class TatpTest : public ::testing::Test {
 protected:
  TatpTest() : db_(&mgr_, kSubs) { db_.Load(3); }

  static constexpr uint64_t kSubs = 2000;
  TransactionManager mgr_;
  TatpDb db_;
};

TEST_F(TatpTest, LoaderPopulatesAllTables) {
  EXPECT_EQ(db_.subscribers.ObjectCount(), kSubs);
  // 1-4 rows per subscriber, expectation 2.5.
  EXPECT_GT(db_.access_info.ObjectCount(), kSubs);
  EXPECT_LT(db_.access_info.ObjectCount(), kSubs * 4);
  EXPECT_GT(db_.special_facilities.ObjectCount(), kSubs);
  EXPECT_GT(db_.call_forwarding.ObjectCount(), kSubs / 4);
}

TEST_F(TatpTest, AllTransactionTypesRunUnderBothEngines) {
  TatpGenerator gen(kSubs, 77);
  int committed_mv3c = 0, committed_omvcc = 0;
  int aborted_mv3c = 0, aborted_omvcc = 0;
  for (int i = 0; i < 2000; ++i) {
    const TatpParams p = gen.Next();
    Mv3cExecutor m(&mgr_);
    if (m.Run(Mv3cTatpProgram(db_, p)) == StepResult::kCommitted) {
      ++committed_mv3c;
    } else {
      ++aborted_mv3c;
    }
    OmvccExecutor o(&mgr_);
    if (o.Run(OmvccTatpProgram(db_, p)) == StepResult::kCommitted) {
      ++committed_omvcc;
    } else {
      ++aborted_omvcc;
    }
  }
  // Serial execution: identical user-abort behavior for both engines,
  // except INSERT_CALL_FORWARDING where MV3C's earlier insert succeeds and
  // the OMVCC run right after it hits a duplicate (and vice versa for
  // DELETE). Allow a small divergence.
  EXPECT_NEAR(committed_mv3c, committed_omvcc, 60);
  EXPECT_GT(committed_mv3c, 1500);  // most transactions succeed
}

TEST_F(TatpTest, UpdateLocationBlindWriteAsymmetry) {
  TatpParams p;
  p.type = TxnType::kUpdateLocation;
  p.s_id = 42;
  p.location = 0xBEEF;

  // Two concurrent MV3C UPDATE_LOCATIONs: no conflict at all.
  Mv3cExecutor a(&mgr_), b(&mgr_);
  TatpParams p2 = p;
  p2.location = 0xCAFE;
  a.Reset(Mv3cTatpProgram(db_, p));
  b.Reset(Mv3cTatpProgram(db_, p2));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);
  EXPECT_EQ(b.stats().ww_restarts, 0u);
  EXPECT_EQ(b.stats().validation_failures, 0u);

  // Two concurrent OMVCC UPDATE_LOCATIONs: the second prematurely aborts.
  OmvccExecutor c(&mgr_), d(&mgr_);
  c.Reset(OmvccTatpProgram(db_, p));
  d.Reset(OmvccTatpProgram(db_, p2));
  c.Begin();
  d.Begin();
  ASSERT_EQ(OmvccTatpProgram(db_, p)(c.txn()), ExecStatus::kOk);
  ASSERT_EQ(d.Step(), StepResult::kNeedsRetry);
  EXPECT_EQ(d.stats().ww_restarts, 1u);
  c.txn().RollbackAll();
  mgr_.FinishAborted(&c.txn().inner());
}

TEST_F(TatpTest, InsertThenDeleteCallForwardingRoundTrip) {
  TatpParams p;
  p.s_id = 7;
  p.sf_type = 1;  // sf_type 1 always exists (loader inserts 1..n_sf)
  p.start_time = 0;
  p.end_time = 20;
  p.numberx = 999;

  // Delete any preexisting row first.
  p.type = TxnType::kDeleteCallForwarding;
  Mv3cExecutor d0(&mgr_);
  (void)d0.Run(Mv3cTatpProgram(db_, p));  // outcome depends on loader; ignore

  p.type = TxnType::kInsertCallForwarding;
  Mv3cExecutor ins(&mgr_);
  ASSERT_EQ(ins.Run(Mv3cTatpProgram(db_, p)), StepResult::kCommitted);
  // Second insert is a duplicate -> user abort.
  Mv3cExecutor ins2(&mgr_);
  ASSERT_EQ(ins2.Run(Mv3cTatpProgram(db_, p)), StepResult::kUserAborted);
  // Delete succeeds exactly once.
  p.type = TxnType::kDeleteCallForwarding;
  Mv3cExecutor del(&mgr_);
  ASSERT_EQ(del.Run(Mv3cTatpProgram(db_, p)), StepResult::kCommitted);
  Mv3cExecutor del2(&mgr_);
  ASSERT_EQ(del2.Run(Mv3cTatpProgram(db_, p)), StepResult::kUserAborted);
}

TEST_F(TatpTest, WindowRunCompletes) {
  TatpGenerator gen(kSubs, 5);
  std::vector<TatpParams> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      32, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); },
      [&] { mgr_.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return Mv3cTatpProgram(db_, stream[i]); }));
  EXPECT_EQ(res.committed + res.user_aborted, stream.size());
  EXPECT_GT(res.committed, res.user_aborted);
}

TEST_F(TatpTest, NonUniformKeysAreSkewed) {
  TatpGenerator gen(kSubs, 11);
  std::vector<uint64_t> counts(kSubs, 0);
  for (int i = 0; i < 50000; ++i) {
    const TatpParams p = gen.Next();
    ASSERT_LT(p.s_id, kSubs);
    ++counts[p.s_id];
  }
  // NURand concentrates mass: the hottest key should far exceed uniform.
  const uint64_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, 50000 / kSubs * 3);
}

}  // namespace
}  // namespace mv3c
