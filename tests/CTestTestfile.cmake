# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/tests/mvcc_core_test[1]_include.cmake")
include("/root/repo/tests/mv3c_engine_test[1]_include.cmake")
include("/root/repo/tests/serializability_test[1]_include.cmake")
include("/root/repo/tests/index_test[1]_include.cmake")
include("/root/repo/tests/omvcc_engine_test[1]_include.cmake")
include("/root/repo/tests/trading_test[1]_include.cmake")
include("/root/repo/tests/tatp_test[1]_include.cmake")
include("/root/repo/tests/tpcc_test[1]_include.cmake")
include("/root/repo/tests/sv_engine_test[1]_include.cmake")
include("/root/repo/tests/ripple_test[1]_include.cmake")
include("/root/repo/tests/common_test[1]_include.cmake")
include("/root/repo/tests/gc_test[1]_include.cmake")
include("/root/repo/tests/driver_test[1]_include.cmake")
include("/root/repo/tests/repair_property_test[1]_include.cmake")
