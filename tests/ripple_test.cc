// Ripple-effect simulator tests (paper Appendix C.3 / Figure 7(c)).

#include <gtest/gtest.h>

#include "driver/ripple_simulator.h"

namespace mv3c {
namespace {

RippleSimulator::Params PaperParams(uint64_t retry_cost,
                                    uint64_t period = 251) {
  RippleSimulator::Params p;
  p.exec_cost = 250;
  p.retry_cost = retry_cost;
  p.fast_period = period;
  p.slow_period = 72'000'000;
  p.n_fast = 5000;
  return p;
}

TEST(RippleSimulatorTest, SingleDisturbanceRipplesThroughTheStream) {
  const auto s = RippleSimulator::Run(PaperParams(250));
  // One slow-stream transaction at t=0 makes essentially every subsequent
  // transaction fail validation once.
  EXPECT_GT(s.total_retries, s.txns.size() * 9 / 10);
  // Latency keeps growing: the backlog feeds on itself.
  EXPECT_GT(s.txns.back().Latency(), s.txns[100].Latency());
}

TEST(RippleSimulatorTest, CheaperRepairSlowsTheDivergence) {
  const auto omvcc = RippleSimulator::Run(PaperParams(250));
  const auto mv3c = RippleSimulator::Run(PaperParams(187));
  EXPECT_LT(mv3c.mean_latency, omvcc.mean_latency);
  EXPECT_LT(mv3c.max_latency, omvcc.max_latency);
  EXPECT_LT(mv3c.makespan, omvcc.makespan);
  // Divergence slope ratio roughly (437-251)/(500-251).
  const double slope_mv3c =
      static_cast<double>(mv3c.txns.back().Latency()) / mv3c.txns.size();
  const double slope_omvcc =
      static_cast<double>(omvcc.txns.back().Latency()) / omvcc.txns.size();
  EXPECT_NEAR(slope_mv3c / slope_omvcc, 186.0 / 249.0, 0.05);
}

TEST(RippleSimulatorTest, QualitativeSplitAtIntermediateRate) {
  // With 470 time units between arrivals, MV3C's conflicted service time
  // (437) fits in the period — its backlog drains and the tail runs
  // conflict-free — while OMVCC's (500) does not and diverges.
  const auto omvcc = RippleSimulator::Run(PaperParams(250, 470));
  const auto mv3c = RippleSimulator::Run(PaperParams(187, 470));
  EXPECT_EQ(mv3c.txns.back().Latency(), 250u);   // healed
  EXPECT_GT(omvcc.txns.back().Latency(), 50000u);  // diverged
  EXPECT_LT(mv3c.total_retries, omvcc.total_retries / 10);
}

TEST(RippleSimulatorTest, LatencyIsMonotoneInRetryCost) {
  double prev = -1;
  for (uint64_t cost : {100, 150, 187, 220, 250}) {
    const auto s = RippleSimulator::Run(PaperParams(cost));
    EXPECT_GE(s.mean_latency, prev);
    prev = s.mean_latency;
  }
}

TEST(RippleSimulatorTest, WidelySpacedArrivalsNeverConflict) {
  RippleSimulator::Params p = PaperParams(250, 1000);
  p.n_fast = 100;
  const auto s = RippleSimulator::Run(p);
  // Only the t=0 collision with the slow stream costs a retry.
  EXPECT_LE(s.total_retries, 2u);
  EXPECT_EQ(s.txns.back().Latency(), 250u);
}

}  // namespace
}  // namespace mv3c
