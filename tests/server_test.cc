// Serving front-end tests (DESIGN §5k): wire-protocol fuzzing (a torn,
// oversized, CRC-corrupted, or garbage byte stream must produce a clean
// connection close — never a crash or a partially-applied transaction),
// admission-control units (token bucket, bounded queue, retry-after
// estimator), and in-process socket integration including the 4x-capacity
// overload scenario the ISSUE acceptance criteria name.

#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "workloads/banking.h"
#include "workloads/tpcc.h"

namespace mv3c::server {
namespace {

// ---------------------------------------------------------------------------
// FrameReader: framing and fuzz
// ---------------------------------------------------------------------------

std::vector<uint8_t> OneFrame(const void* payload, uint32_t n) {
  std::vector<uint8_t> out;
  AppendFrame(&out, payload, n);
  return out;
}

TEST(FrameReaderTest, ParsesWholeAndTornFrames) {
  const char msg[] = "hello mv3c";
  std::vector<uint8_t> wire = OneFrame(msg, sizeof(msg));
  // Two copies back to back, delivered in 1-byte chunks (maximally torn).
  wire.insert(wire.end(), wire.begin(), wire.end());
  FrameReader r;
  int frames = 0;
  for (uint8_t b : wire) {
    ASSERT_TRUE(r.Feed(&b, 1, [&](const uint8_t* p, uint32_t n) {
      ASSERT_EQ(n, sizeof(msg));
      EXPECT_EQ(std::memcmp(p, msg, n), 0);
      ++frames;
    }));
  }
  EXPECT_EQ(frames, 2);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReaderTest, BadMagicIsTerminal) {
  std::vector<uint8_t> wire = OneFrame("x", 1);
  wire[0] ^= 0xFF;
  FrameReader r;
  EXPECT_FALSE(r.Feed(wire.data(), wire.size(), [](const uint8_t*, uint32_t) {
    FAIL() << "sink must not fire";
  }));
  EXPECT_EQ(r.error(), FrameReader::Error::kBadMagic);
  // Terminal: even a valid frame afterwards is refused.
  std::vector<uint8_t> good = OneFrame("y", 1);
  EXPECT_FALSE(r.Feed(good.data(), good.size(),
                      [](const uint8_t*, uint32_t) {}));
}

TEST(FrameReaderTest, HeaderCrcCatchesLengthCorruption) {
  std::vector<uint8_t> wire = OneFrame("abcd", 4);
  wire[4] ^= 0x01;  // flip a payload_bytes bit, header CRC now stale
  FrameReader r;
  EXPECT_FALSE(
      r.Feed(wire.data(), wire.size(), [](const uint8_t*, uint32_t) {}));
  EXPECT_EQ(r.error(), FrameReader::Error::kBadHeaderCrc);
}

TEST(FrameReaderTest, OversizedLengthRefusedBeforeBuffering) {
  // A *consistent* header (valid CRC) claiming a huge payload: the reader
  // must reject on the length bound, not allocate and wait for 16MB.
  FrameHeader h{};
  h.magic = kFrameMagic;
  h.payload_bytes = 16u << 20;
  h.payload_crc = 0;
  h.header_crc = FrameHeaderCrc(h);
  FrameReader r;
  EXPECT_FALSE(r.Feed(reinterpret_cast<const uint8_t*>(&h), sizeof(h),
                      [](const uint8_t*, uint32_t) {}));
  EXPECT_EQ(r.error(), FrameReader::Error::kOversized);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReaderTest, PayloadCrcCatchesBitFlip) {
  std::vector<uint8_t> wire = OneFrame("abcdefgh", 8);
  wire[sizeof(FrameHeader) + 3] ^= 0x40;
  FrameReader r;
  EXPECT_FALSE(
      r.Feed(wire.data(), wire.size(), [](const uint8_t*, uint32_t) {}));
  EXPECT_EQ(r.error(), FrameReader::Error::kBadPayloadCrc);
}

TEST(FrameReaderTest, GarbageFuzzNeverCrashesOrFiresSink) {
  // Deterministic garbage streams: every one must end in a terminal error
  // (or still be waiting for bytes) without invoking the sink — the odds
  // of random bytes forging magic + CRC32C are negligible.
  Xoshiro256 rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    FrameReader r;
    bool dead = false;
    for (int chunk = 0; chunk < 16 && !dead; ++chunk) {
      uint8_t buf[64];
      const size_t n = 1 + rng.NextBounded(sizeof(buf));
      for (size_t i = 0; i < n; ++i) {
        buf[i] = static_cast<uint8_t>(rng.Next());
      }
      dead = !r.Feed(buf, n, [](const uint8_t*, uint32_t) {
        FAIL() << "garbage parsed as a frame";
      });
    }
    // Either the stream died or fewer than 16 bytes ever lined up into a
    // full header; both are acceptable, crashing is not.
    if (dead) {
      EXPECT_NE(r.error(), FrameReader::Error::kNone);
    }
  }
}

TEST(FrameReaderTest, TruncatedStreamHoldsPartialFrameOnly) {
  const char msg[] = "partial";
  std::vector<uint8_t> wire = OneFrame(msg, sizeof(msg));
  FrameReader r;
  int frames = 0;
  // All but the last byte: nothing fires, bytes stay buffered.
  ASSERT_TRUE(r.Feed(wire.data(), wire.size() - 1,
                     [&](const uint8_t*, uint32_t) { ++frames; }));
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(r.buffered(), wire.size() - 1);
  ASSERT_TRUE(r.Feed(wire.data() + wire.size() - 1, 1,
                     [&](const uint8_t*, uint32_t) { ++frames; }));
  EXPECT_EQ(frames, 1);
}

// ---------------------------------------------------------------------------
// Admission units
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, BurstThenRefuseThenRefill) {
  TokenBucket b(/*rate=*/1000.0, /*burst=*/3.0);
  const uint64_t t0 = 1'000'000'000;
  uint32_t ra = 0;
  EXPECT_TRUE(b.TryTake(t0, &ra));
  EXPECT_TRUE(b.TryTake(t0, &ra));
  EXPECT_TRUE(b.TryTake(t0, &ra));
  EXPECT_FALSE(b.TryTake(t0, &ra));
  EXPECT_GT(ra, 0u);
  EXPECT_LE(ra, 1001u);  // one token at 1000/s is 1ms away
  // 2ms later two tokens accrued.
  EXPECT_TRUE(b.TryTake(t0 + 2'000'000, &ra));
  EXPECT_TRUE(b.TryTake(t0 + 2'000'000, &ra));
  EXPECT_FALSE(b.TryTake(t0 + 2'000'000, &ra));
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket b(0, 0);
  uint32_t ra = 0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.TryTake(123456789 + i, &ra));
  }
}

TEST(AdmissionQueueTest, BoundedPushAndBatchedPop) {
  AdmissionQueue q(4);
  for (int i = 0; i < 4; ++i) {
    QueuedRequest r;
    r.request_id = static_cast<uint64_t>(i);
    EXPECT_TRUE(q.TryPush(std::move(r)));
  }
  QueuedRequest overflow;
  EXPECT_FALSE(q.TryPush(std::move(overflow)));  // full: shed
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.peak_depth(), 4u);

  auto batch = q.PopBatch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request_id, 0u);  // FIFO
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.peak_depth(), 4u);  // high-water mark sticks

  q.Close();
  EXPECT_EQ(q.PopBatch(8).size(), 1u);       // drains the remainder
  EXPECT_TRUE(q.PopBatch(8).empty());        // then reports closed
  QueuedRequest late;
  EXPECT_FALSE(q.TryPush(std::move(late)));  // closed refuses new work
}

TEST(AdmissionQueueTest, CloseWakesBlockedConsumer) {
  AdmissionQueue q(4);
  std::thread consumer([&] { EXPECT_TRUE(q.PopBatch(4).empty()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(ServiceTimeEstimateTest, EwmaAndRetryAfterClamps) {
  ServiceTimeEstimate e;
  EXPECT_EQ(e.RetryAfterUs(0), 1000u);  // cold estimate: 1ms default
  for (int i = 0; i < 64; ++i) e.Record(1'000'000);  // 1ms service time
  EXPECT_NEAR(static_cast<double>(e.ewma_ns()), 1e6, 2e5);
  // Backlog of 100 at ~1ms each ~= 100ms.
  const uint32_t ra = e.RetryAfterUs(100);
  EXPECT_GE(ra, 50'000u);
  EXPECT_LE(ra, 200'000u);
  EXPECT_EQ(e.RetryAfterUs(100'000), 1'000'000u);  // ceiling: 1s
  ServiceTimeEstimate fast;
  fast.Record(10);  // 10ns service time -> floor kicks in
  EXPECT_EQ(fast.RetryAfterUs(0), 200u);
}

// ---------------------------------------------------------------------------
// Socket integration
// ---------------------------------------------------------------------------

/// Minimal blocking client for tests: connects, writes raw bytes, decodes
/// response frames.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }

  void SendRaw(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t k =
          send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (k <= 0) return;
      off += static_cast<size_t>(k);
    }
  }

  /// Reads until `n` responses decode, EOF, or ~deadline_ms passes.
  std::vector<ResponseHeader> ReadResponses(size_t n, int deadline_ms = 5000) {
    std::vector<ResponseHeader> out;
    uint8_t buf[16 * 1024];
    int waited = 0;
    while (out.size() < n && waited < deadline_ms) {
      pollfd p{fd_, POLLIN, 0};
      const int pr = poll(&p, 1, 50);
      if (pr == 0) {
        waited += 50;
        continue;
      }
      const ssize_t k = recv(fd_, buf, sizeof(buf), 0);
      if (k <= 0) {
        eof_ = true;
        break;
      }
      reader_.Feed(buf, static_cast<size_t>(k),
                   [&](const uint8_t* payload, uint32_t bytes) {
                     ASSERT_GE(bytes, sizeof(ResponseHeader));
                     ResponseHeader rh;
                     std::memcpy(&rh, payload, sizeof(rh));
                     out.push_back(rh);
                   });
    }
    return out;
  }

  /// True iff the server closes this connection within the deadline.
  bool WaitForClose(int deadline_ms = 5000) {
    uint8_t buf[4096];
    int waited = 0;
    while (waited < deadline_ms) {
      pollfd p{fd_, POLLIN, 0};
      const int pr = poll(&p, 1, 50);
      if (pr == 0) {
        waited += 50;
        continue;
      }
      const ssize_t k = recv(fd_, buf, sizeof(buf), 0);
      if (k == 0) return true;
      if (k < 0) return true;
    }
    return false;
  }

  /// One-shot HTTP GET; returns the full response (headers + body).
  static std::string HttpGet(uint16_t port, const std::string& path) {
    TestClient c(port);
    const std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
    c.SendRaw(std::vector<uint8_t>(req.begin(), req.end()));
    std::string resp;
    uint8_t buf[16 * 1024];
    while (true) {
      pollfd p{c.fd_, POLLIN, 0};
      if (poll(&p, 1, 3000) <= 0) break;
      const ssize_t k = recv(c.fd_, buf, sizeof(buf), 0);
      if (k <= 0) break;
      resp.append(reinterpret_cast<char*>(buf), static_cast<size_t>(k));
    }
    return resp;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  FrameReader reader_;
};

ServerOptions SmallBankingOptions() {
  ServerOptions o;
  o.host.workload = "banking";
  o.host.engine = "mv3c";
  o.host.workers = 2;
  o.host.scale = 2000;
  o.queue_depth = 256;
  return o;
}

banking::TransferParams MakeTransfer(int64_t from, int64_t to) {
  banking::TransferParams p;
  p.from = from;
  p.to = to;
  p.amount = 5;
  p.with_fee = false;
  return p;
}

TEST(ServerIntegrationTest, PingTransferAndBadOpcode) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());

  std::vector<uint8_t> wire;
  AppendPing(&wire, 1);
  AppendRequest(&wire, 2, Op::kBankingTransfer, MakeTransfer(1, 2));
  AppendRequest(&wire, 3, Op::kTpcc, tpcc::TpccParams{});  // wrong workload
  c.SendRaw(wire);

  auto rs = c.ReadResponses(3);
  ASSERT_EQ(rs.size(), 3u);
  // Responses may interleave (ping/bad-request answer inline, the transfer
  // goes through the worker pool), so index by request_id.
  for (const ResponseHeader& rh : rs) {
    if (rh.request_id == 1) {
      EXPECT_EQ(rh.status, static_cast<uint16_t>(TxnStatus::kPong));
    } else if (rh.request_id == 2) {
      EXPECT_EQ(rh.status, static_cast<uint16_t>(TxnStatus::kCommitted));
      EXPECT_NE(rh.commit_ts, 0u);
    } else {
      EXPECT_EQ(rh.request_id, 3u);
      EXPECT_EQ(rh.status, static_cast<uint16_t>(TxnStatus::kBadRequest));
    }
  }
  EXPECT_EQ(server.stats().txn_committed.load(), 1u);
  server.Stop();
}

TEST(ServerIntegrationTest, WrongSizeParamsRejectedBeforeEngine) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  ASSERT_TRUE(c.connected());
  // Right opcode, truncated params: kBadRequest, no engine entry.
  RequestHeader rq{};
  rq.request_id = 9;
  rq.opcode = static_cast<uint16_t>(Op::kBankingTransfer);
  uint8_t payload[sizeof(rq) + 3] = {};
  std::memcpy(payload, &rq, sizeof(rq));
  std::vector<uint8_t> wire;
  AppendFrame(&wire, payload, sizeof(payload));
  c.SendRaw(wire);
  auto rs = c.ReadResponses(1);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].status, static_cast<uint16_t>(TxnStatus::kBadRequest));
  EXPECT_EQ(server.stats().txn_committed.load(), 0u);
  server.Stop();
}

TEST(ServerIntegrationTest, GarbageBytesCloseConnectionCleanly) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  {
    TestClient c(server.port());
    ASSERT_TRUE(c.connected());
    // Binary-looking garbage: correct magic prefix, then noise — the
    // header CRC kills it. (Pure noise without the magic is sniffed as
    // HTTP and dies on the HTTP path; both must close cleanly.)
    std::vector<uint8_t> garbage = {'M', 'V', '3', 'S'};
    Xoshiro256 rng(7);
    for (int i = 0; i < 64; ++i) {
      garbage.push_back(static_cast<uint8_t>(rng.Next()));
    }
    c.SendRaw(garbage);
    EXPECT_TRUE(c.WaitForClose());
  }
  // The server survived and still serves.
  TestClient c2(server.port());
  ASSERT_TRUE(c2.connected());
  std::vector<uint8_t> wire;
  AppendRequest(&wire, 1, Op::kBankingTransfer, MakeTransfer(3, 4));
  c2.SendRaw(wire);
  auto rs = c2.ReadResponses(1);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].status, static_cast<uint16_t>(TxnStatus::kCommitted));
  EXPECT_GE(server.stats().protocol_errors.load(), 1u);
  server.Stop();
}

TEST(ServerIntegrationTest, TornFrameNeverRunsPartialTransaction) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  {
    TestClient c(server.port());
    ASSERT_TRUE(c.connected());
    std::vector<uint8_t> wire;
    AppendRequest(&wire, 1, Op::kBankingTransfer, MakeTransfer(1, 2));
    // Send all but the last 5 bytes, then hang up: the frame never
    // completes, so the transaction must never run.
    wire.resize(wire.size() - 5);
    c.SendRaw(wire);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }  // client closes with a partial frame buffered server-side
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(server.stats().txn_committed.load(), 0u);
  EXPECT_EQ(server.stats().requests_received.load(), 0u);
  server.Stop();
}

TEST(ServerIntegrationTest, OversizedAndBadCrcFramesClose) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  {
    // Oversized declared length with a *valid* header CRC.
    TestClient c(server.port());
    FrameHeader h{};
    h.magic = kFrameMagic;
    h.payload_bytes = 1u << 24;
    h.header_crc = FrameHeaderCrc(h);
    std::vector<uint8_t> wire(sizeof(h));
    std::memcpy(wire.data(), &h, sizeof(h));
    c.SendRaw(wire);
    EXPECT_TRUE(c.WaitForClose());
  }
  {
    // Valid header, corrupted payload byte.
    TestClient c(server.port());
    std::vector<uint8_t> wire;
    AppendRequest(&wire, 1, Op::kBankingTransfer, MakeTransfer(1, 2));
    wire[sizeof(FrameHeader) + sizeof(RequestHeader) + 2] ^= 0x10;
    c.SendRaw(wire);
    EXPECT_TRUE(c.WaitForClose());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(server.stats().txn_committed.load(), 0u);
  EXPECT_GE(server.stats().protocol_errors.load(), 2u);
  server.Stop();
}

TEST(ServerIntegrationTest, HealthzAndMetricsOverHttp) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  std::vector<uint8_t> wire;
  AppendRequest(&wire, 1, Op::kBankingTransfer, MakeTransfer(5, 6));
  c.SendRaw(wire);
  ASSERT_EQ(c.ReadResponses(1).size(), 1u);

  const std::string health = TestClient::HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = TestClient::HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("mv3c_server_txn_committed_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("mv3c_server_admission_queue_capacity"),
            std::string::npos);
  // Engine counters ride along, labeled with engine/workload.
  EXPECT_NE(metrics.find("mv3c_engine_commits_total{engine=\"mv3c\","
                         "workload=\"banking\"} 1"),
            std::string::npos);

  const std::string missing = TestClient::HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.Stop();
}

TEST(ServerIntegrationTest, PerClientRateLimitSheds) {
  ServerOptions o = SmallBankingOptions();
  o.client_rate = 50;  // tokens/s
  o.client_burst = 4;
  Server server(o);
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  std::vector<uint8_t> wire;
  for (uint64_t i = 1; i <= 20; ++i) {
    AppendRequest(&wire, i, Op::kBankingTransfer, MakeTransfer(1, 2));
  }
  c.SendRaw(wire);
  auto rs = c.ReadResponses(20);
  ASSERT_EQ(rs.size(), 20u);
  uint64_t limited = 0;
  for (const ResponseHeader& rh : rs) {
    if (rh.status == static_cast<uint16_t>(TxnStatus::kRateLimited)) {
      ++limited;
      EXPECT_GT(rh.retry_after_us, 0u);
    }
  }
  // Burst of 4 (plus whatever trickles in at 50/s): most of 20 shed.
  EXPECT_GE(limited, 10u);
  EXPECT_EQ(server.stats().shed_rate_limited.load(), limited);
  server.Stop();
}

// The 4x-capacity overload scenario: service_delay_us pins per-request
// service time so capacity is a number, the queue bound is tiny, and the
// client offers a burst far beyond both. The server must (a) stay up,
// (b) answer *every* request, (c) shed with kOverload + a retry-after
// hint, and (d) never let the queue grow past its bound.
TEST(ServerIntegrationTest, OverloadShedsBoundedWithRetryAfter) {
  ServerOptions o = SmallBankingOptions();
  o.host.workers = 2;
  o.host.service_delay_us = 2000;  // 2ms/txn -> ~1000 txn/s capacity
  o.queue_depth = 16;
  Server server(o);
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());

#if defined(MV3C_FAILPOINTS_ENABLED)
  // With failpoints armed some admitted transactions burn repair/retry
  // rounds before committing — overload shedding must hold regardless.
  failpoint::Reset(42);
  failpoint::ScopedArm arm(failpoint::Site::kPrevalidate,
                           {.action = failpoint::Action::kFail,
                            .probability = 0.2,
                            .max_trips = 64});
#endif

  // ~4x capacity for one second: 200 requests in one burst (the queue
  // holds 16 + 2 in flight; the rest must shed immediately).
  constexpr uint64_t kBurst = 200;
  std::vector<uint8_t> wire;
  for (uint64_t i = 1; i <= kBurst; ++i) {
    AppendRequest(&wire, i, Op::kBankingTransfer,
                  MakeTransfer(1 + (i % 100), 200 + (i % 100)));
  }
  c.SendRaw(wire);
  auto rs = c.ReadResponses(kBurst, 20000);
  ASSERT_EQ(rs.size(), kBurst) << "every request must be answered";

  uint64_t committed = 0, shed = 0;
  for (const ResponseHeader& rh : rs) {
    switch (static_cast<TxnStatus>(rh.status)) {
      case TxnStatus::kCommitted:
        ++committed;
        break;
      case TxnStatus::kOverload:
        ++shed;
        // The shed response must carry a server-driven backoff hint.
        EXPECT_GE(rh.retry_after_us, 200u);
        EXPECT_LE(rh.retry_after_us, 1'000'000u);
        break;
      case TxnStatus::kExhausted:
        EXPECT_GT(rh.retry_after_us, 0u);
        break;
      default:
        break;
    }
  }
  EXPECT_GT(committed, 0u);
  EXPECT_GT(shed, 0u) << "4x capacity must shed";
  // The bound held: the queue never grew past its configured depth.
  EXPECT_LE(server.queue_peak_depth(), o.queue_depth);
  EXPECT_EQ(server.stats().shed_overload.load(), shed);
  server.Stop();
}

TEST(ServerIntegrationTest, MetricsTextMatchesServerStats) {
  Server server(SmallBankingOptions());
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  std::vector<uint8_t> wire;
  constexpr uint64_t kN = 25;
  for (uint64_t i = 1; i <= kN; ++i) {
    AppendRequest(&wire, i, Op::kBankingTransfer,
                  MakeTransfer(1 + (i % 50), 100 + (i % 50)));
  }
  c.SendRaw(wire);
  auto rs = c.ReadResponses(kN);
  ASSERT_EQ(rs.size(), kN);
  uint64_t acked_commits = 0;
  for (const ResponseHeader& rh : rs) {
    acked_commits +=
        rh.status == static_cast<uint16_t>(TxnStatus::kCommitted);
  }
  // The Prometheus scrape's committed counter equals the client-observed
  // acked commits exactly — the CI integration job's core assertion.
  const std::string metrics = server.MetricsText();
  const std::string needle = "mv3c_server_txn_committed_total " +
                             std::to_string(acked_commits) + "\n";
  EXPECT_NE(metrics.find(needle), std::string::npos) << metrics;
  server.Stop();
}

#if defined(MV3C_WAL_ENABLED)
TEST(ServerIntegrationTest, SyncAckSetsDurableFlag) {
  ServerOptions o = SmallBankingOptions();
  o.host.wal = true;
  o.host.sync_ack = true;
  o.host.wal_dir = testing::TempDir() + "/serve_wal_" +
                   std::to_string(::getpid());
  Server server(o);
  ASSERT_TRUE(server.Start());
  TestClient c(server.port());
  std::vector<uint8_t> wire;
  AppendRequest(&wire, 1, Op::kBankingTransfer, MakeTransfer(7, 8));
  c.SendRaw(wire);
  auto rs = c.ReadResponses(1, 10000);
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].status, static_cast<uint16_t>(TxnStatus::kCommitted));
  EXPECT_NE(rs[0].flags & kRespFlagDurable, 0u);
  server.Stop();
}
#endif

}  // namespace
}  // namespace mv3c::server
