// Chaos suite: Banking and Trading driven under armed failpoints, asserting
// that serializability (Theorem 2.1), money conservation, the GC grace-
// period invariants, and the retry-policy budget all survive injected
// validation failures, spurious write-write conflicts, lagging garbage
// collection, and scheduling perturbation. With MV3C_FAILPOINTS=OFF the
// arming calls are inert and the suite degenerates to a plain
// serializability stress (still worth running); injection-specific
// assertions are gated on failpoint::kEnabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "driver/thread_driver.h"
#include "mvcc/version_arena.h"
#include "driver/window_driver.h"
#include "workloads/banking.h"
#include "workloads/trading.h"

namespace mv3c {
namespace {

namespace fp = ::mv3c::failpoint;

using banking::BankingDb;
using banking::TransferParams;

constexpr int64_t kAccounts = 24;  // small -> frequent real conflicts too
constexpr int64_t kInitial = 1'000'000;

/// Arms the standard chaos schedule. Probabilities are low enough that
/// transactions converge (the §4.3 exclusive-repair escalation guarantees
/// commit) yet high enough that every site fires over a few hundred
/// transactions.
void ArmChaosSchedule() {
  fp::Config cfg;
  cfg.probability = 0.15;
  fp::Arm(fp::Site::kPrevalidate, cfg);
  cfg.probability = 0.10;
  fp::Arm(fp::Site::kCommitDelta, cfg);
  fp::Arm(fp::Site::kCommitExclusiveDelta, cfg);
  cfg.probability = 0.05;
  fp::Arm(fp::Site::kVersionChainPush, cfg);
  cfg.probability = 0.50;
  fp::Arm(fp::Site::kGcReclaim, cfg);
  fp::Config yield;
  yield.action = fp::Action::kYield;
  yield.probability = 0.25;
  fp::Arm(fp::Site::kRetimestamp, yield);
}

Mv3cConfig ChaosConfig() {
  Mv3cConfig config;
  config.exclusive_repair_after = 3;  // §4.3 heuristic: bounded rounds
  config.retry.max_attempts = 64;
  return config;
}

struct ChaosOutcome {
  DriveResult result;
  Mv3cStats stats;
  uint64_t schedule_hash = 0;
  std::vector<int64_t> balances;
  std::vector<std::pair<Timestamp, TransferParams>> committed;
};

std::vector<TransferParams> MakeStream(uint64_t n, uint64_t seed) {
  banking::TransferGenerator gen(kAccounts, /*fee_percent=*/100, seed);
  std::vector<TransferParams> stream(n);
  for (auto& p : stream) p = gen.Next();
  return stream;
}

/// One seeded chaos run over the (deterministic) window driver.
ChaosOutcome RunBankingChaos(uint64_t seed, uint64_t n_txns, size_t window) {
  fp::Reset(seed);
  ChaosOutcome out;
  {
    TransactionManager mgr;
    BankingDb db(&mgr, kAccounts, kInitial);
    db.Load();
    const auto stream = MakeStream(n_txns, seed * 7919 + 1);
    // Chaos covers the workload, not the deterministic load phase: the
    // loaders run serially and outside any retry loop, so an injected
    // push failure there would (correctly) abort via MV3C_CHECK.
    ArmChaosSchedule();
    WindowDriver<Mv3cExecutor> driver(
        window,
        [&](...) { return std::make_unique<Mv3cExecutor>(&mgr, ChaosConfig()); },
        [&] { mgr.CollectGarbage(); });
    driver.set_on_complete(
        [&](uint64_t idx, StepResult r, Mv3cExecutor& exec) {
          if (r == StepResult::kCommitted) {
            out.committed.push_back({exec.last_commit_ts(), stream[idx]});
          }
        });
    out.result = driver.Run(CountedSource<Mv3cExecutor::Program>(
        n_txns,
        [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); }));
    for (Mv3cExecutor* e : driver.executors()) out.stats.Add(e->stats());
    fp::DisarmAll();
    out.schedule_hash = fp::ScheduleHash();

    // Money conservation under injection.
    EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
    for (int64_t id = 0; id <= kAccounts; ++id) {
      out.balances.push_back(db.BalanceOf(id));
    }
    // Every transaction reached a terminal outcome; nothing spun forever
    // and nothing was double-counted.
    EXPECT_EQ(out.result.committed + out.result.user_aborted +
                  out.result.exhausted,
              n_txns);
    // Budget invariant: no transaction burned more rounds than allowed.
    EXPECT_LE(out.stats.max_rounds, ChaosConfig().retry.max_attempts);
    // GC invariant: once injection stops, the backlog drains completely
    // (no retired node was lost and none is still considered in use).
    // Since ISSUE 2 the same invariant covers slab retirement: any slab
    // parked by a gc-reclaim firing must drain once injection stops.
    mgr.CollectGarbage();
    mgr.gc().CollectAll();
    EXPECT_EQ(mgr.gc().PendingCount(), 0u);
    mgr.arena().DrainDeferred();
    EXPECT_EQ(mgr.arena().snapshot().deferred_slabs, 0u);
  }
  return out;
}

/// Re-executes the committed transactions serially in commit order.
std::vector<int64_t> SerialReference(
    std::vector<std::pair<Timestamp, TransferParams>> committed) {
  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  Mv3cExecutor exec(&mgr);
  for (const auto& [cts, params] : committed) {
    EXPECT_EQ(exec.Run(banking::Mv3cTransferMoney(db, params)),
              StepResult::kCommitted)
        << "committed transaction must re-commit serially";
  }
  std::vector<int64_t> balances;
  for (int64_t id = 0; id <= kAccounts; ++id) {
    balances.push_back(db.BalanceOf(id));
  }
  return balances;
}

// 100 consecutive seeded runs: each must be commit-order serializable and
// conserve money despite the injected fault schedule.
TEST(ChaosSerializabilityTest, HundredSeededBankingRunsStaySerializable) {
  uint64_t total_trips = 0;
  uint64_t total_exhausted = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const ChaosOutcome out =
        RunBankingChaos(seed, /*n_txns=*/300, /*window=*/8);
    EXPECT_EQ(out.balances, SerialReference(out.committed));
    total_trips += out.stats.failpoint_trips;
    total_exhausted += out.result.exhausted;
    if (::testing::Test::HasFatalFailure()) break;
  }
  fp::Reset(0);
  if (fp::kEnabled) {
    // The chaos schedule must actually have injected faults.
    EXPECT_GT(total_trips, 0u);
  } else {
    EXPECT_EQ(total_trips, 0u);
  }
  // With §4.3 escalation enabled every transaction is guaranteed to commit
  // long before the 64-round budget.
  EXPECT_EQ(total_exhausted, 0u);
}

// The reproducibility contract: the same seed must produce the identical
// fault schedule, identical outcome counters, and the identical database.
TEST(ChaosSerializabilityTest, SameSeedReproducesScheduleAndStats) {
  const ChaosOutcome a = RunBankingChaos(42, /*n_txns=*/500, /*window=*/8);
  const ChaosOutcome b = RunBankingChaos(42, /*n_txns=*/500, /*window=*/8);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.result.committed, b.result.committed);
  EXPECT_EQ(a.result.user_aborted, b.result.user_aborted);
  EXPECT_EQ(a.result.exhausted, b.result.exhausted);
  EXPECT_EQ(a.result.escalations, b.result.escalations);
  EXPECT_EQ(a.result.steps, b.result.steps);
  EXPECT_EQ(a.stats.validation_failures, b.stats.validation_failures);
  EXPECT_EQ(a.stats.repair_rounds, b.stats.repair_rounds);
  EXPECT_EQ(a.stats.ww_restarts, b.stats.ww_restarts);
  EXPECT_EQ(a.stats.failpoint_trips, b.stats.failpoint_trips);
  EXPECT_EQ(a.stats.exclusive_repairs, b.stats.exclusive_repairs);
  EXPECT_EQ(a.balances, b.balances);
  if (fp::kEnabled) {
    EXPECT_GT(a.stats.failpoint_trips, 0u);
    // And a different seed produces a different schedule.
    const ChaosOutcome c = RunBankingChaos(43, /*n_txns=*/500, /*window=*/8);
    EXPECT_NE(a.schedule_hash, c.schedule_hash);
  }
  fp::Reset(0);
}

// Trading under chaos: the multi-table workload (trade orders vs price
// updates, range scans, inserts) must keep terminating and stay internally
// consistent; every transaction reaches a terminal outcome and the GC
// backlog drains.
TEST(ChaosSerializabilityTest, TradingChaosRunRemainsConsistent) {
  fp::Reset(/*seed=*/9);
  constexpr uint64_t kTxns = 1000;
  {
    TransactionManager mgr;
    trading::TradingDb db(&mgr, /*securities=*/256, /*customers=*/128);
    db.Load();
    trading::TradingGenerator gen(db, /*alpha=*/1.4,
                                  /*trade_order_percent=*/50, /*seed=*/9);
    std::vector<trading::TradingGenerator::Txn> stream(kTxns);
    for (auto& t : stream) t = gen.Next();
    ArmChaosSchedule();  // after the load phase, as in RunBankingChaos
    WindowDriver<Mv3cExecutor> driver(
        8,
        [&](...) { return std::make_unique<Mv3cExecutor>(&mgr, ChaosConfig()); },
        [&] { mgr.CollectGarbage(); });
    const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
        kTxns, [&](uint64_t i) -> Mv3cExecutor::Program {
          const auto& txn = stream[i];
          return txn.is_trade_order
                     ? trading::Mv3cTradeOrder(db, txn.order)
                     : trading::Mv3cPriceUpdate(db, txn.price);
        }));
    fp::DisarmAll();
    EXPECT_EQ(r.committed + r.user_aborted + r.exhausted, kTxns);
    EXPECT_GT(r.committed, 0u);
    Mv3cStats stats;
    for (Mv3cExecutor* e : driver.executors()) stats.Add(e->stats());
    EXPECT_LE(stats.max_rounds, ChaosConfig().retry.max_attempts);
    if (fp::kEnabled) {
      EXPECT_GT(stats.failpoint_trips, 0u);
    }
    mgr.CollectGarbage();
    mgr.gc().CollectAll();
    EXPECT_EQ(mgr.gc().PendingCount(), 0u);
    mgr.arena().DrainDeferred();
    EXPECT_EQ(mgr.arena().snapshot().deferred_slabs, 0u);
  }
  fp::Reset(0);
}

// Real threads under chaos (the TSan target in CI): four workers hammer a
// tiny banking database while failpoints fire concurrently. Commit
// timestamps are not captured per transaction here; money conservation is
// the serializability witness (any lost/duplicated write breaks it).
TEST(ChaosSerializabilityTest, ThreadedChaosConservesMoney) {
  fp::Reset(/*seed=*/17);
  constexpr uint64_t kTxns = 4000;
  {
    TransactionManager mgr;
    BankingDb db(&mgr, kAccounts, kInitial);
    db.Load();
    const auto stream = MakeStream(kTxns, /*seed=*/23);
    ArmChaosSchedule();  // after the load phase, as in RunBankingChaos
    const DriveResult r = ThreadDriver<Mv3cExecutor>::Run(
        4, kTxns,
        [&](size_t) { return std::make_unique<Mv3cExecutor>(&mgr, ChaosConfig()); },
        [&](uint64_t i, size_t) {
          return banking::Mv3cTransferMoney(db, stream[i]);
        },
        [&] { mgr.CollectGarbage(); });
    fp::DisarmAll();
    EXPECT_EQ(r.committed + r.user_aborted + r.exhausted, kTxns);
    EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
    mgr.CollectGarbage();
    mgr.gc().CollectAll();
    EXPECT_EQ(mgr.gc().PendingCount(), 0u);
    mgr.arena().DrainDeferred();
    EXPECT_EQ(mgr.arena().snapshot().deferred_slabs, 0u);
  }
  fp::Reset(0);
}

// ISSUE 2 satellite: a seeded run with the gc-reclaim failpoint armed HOT
// (every reclaim attempt fires) exercises slab retirement under a collector
// that lags on every pass. Slab retirements fired during the run park on
// the deferred list; once injection stops, CollectGarbage (which drains the
// arena) plus CollectAll must leave zero deferred slabs — and money must
// still be conserved.
TEST(ChaosSerializabilityTest, SlabRetirementChaosDrainsDeferred) {
  fp::Reset(/*seed=*/7);
  constexpr uint64_t kTxns = 4000;
  {
    TransactionManager mgr;
    BankingDb db(&mgr, kAccounts, kInitial);
    db.Load();
    const auto stream = MakeStream(kTxns, /*seed=*/99);
    fp::Config cfg;
    cfg.probability = 0.5;  // reclaim passes still happen; retirements of
                            // drained slabs randomly defer
    fp::Arm(fp::Site::kGcReclaim, cfg);
    WindowDriver<Mv3cExecutor> driver(
        8,
        [&](...) { return std::make_unique<Mv3cExecutor>(&mgr, ChaosConfig()); },
        [&] { mgr.CollectGarbage(); });
    const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
        kTxns,
        [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); }));
    fp::DisarmAll();
    EXPECT_EQ(r.committed + r.user_aborted + r.exhausted, kTxns);
    EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
    if (fp::kEnabled && kVersionArenaEnabled) {
      // The hot schedule must actually have parked slabs at some point.
      EXPECT_GT(mgr.arena().snapshot().retirements_deferred, 0u);
    }
    mgr.CollectGarbage();
    mgr.gc().CollectAll();
    EXPECT_EQ(mgr.gc().PendingCount(), 0u);
    mgr.arena().DrainDeferred();
    EXPECT_EQ(mgr.arena().snapshot().deferred_slabs, 0u);
  }
  fp::Reset(0);
}

}  // namespace
}  // namespace mv3c
