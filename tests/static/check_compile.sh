#!/usr/bin/env bash
# Negative-compilation driver: compiles one case file and checks the
# outcome against the expectation.
#
# Usage: check_compile.sh <pass|fail> <compiler|clang> <source> <include-dir>
#                         <diag-regex> [extra compile flags...]
#
#   arg2 is either an explicit compiler binary (the configured
#   CMAKE_CXX_COMPILER, for cases that must behave the same everywhere) or
#   the literal token `clang`, which searches PATH for a clang++ and SKIPS
#   (exit 77, ctest SKIP_RETURN_CODE) when none exists — thread-safety
#   cases are meaningful only under clang's analysis.
#   <diag-regex> is required for `fail` cases: the compiler output must
#   match it, proving the compile failed for the intended reason and not a
#   typo. Pass `-` to skip the regex (pass cases).

set -u

EXPECT="$1"
COMPILER="$2"
SOURCE="$3"
INCLUDE_DIR="$4"
DIAG="$5"
shift 5

if [[ "${COMPILER}" == "clang" ]]; then
  COMPILER=""
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    if command -v "${cand}" >/dev/null 2>&1; then
      COMPILER="${cand}"
      break
    fi
  done
  if [[ -z "${COMPILER}" ]]; then
    echo "SKIP: no clang++ on PATH (thread-safety analysis is clang-only)"
    exit 77
  fi
fi

OUT="$("${COMPILER}" -std=c++20 -fsyntax-only -I"${INCLUDE_DIR}" "$@" \
       "${SOURCE}" 2>&1)"
STATUS=$?

if [[ "${EXPECT}" == "pass" ]]; then
  if [[ ${STATUS} -ne 0 ]]; then
    echo "FAIL: expected ${SOURCE} to compile, got:"
    printf '%s\n' "${OUT}"
    exit 1
  fi
  exit 0
fi

if [[ ${STATUS} -eq 0 ]]; then
  echo "FAIL: expected ${SOURCE} to be rejected, but it compiled"
  exit 1
fi
if [[ "${DIAG}" != "-" ]] && ! printf '%s\n' "${OUT}" | grep -qE "${DIAG}"; then
  echo "FAIL: ${SOURCE} was rejected, but not with the expected"
  echo "      diagnostic (regex: ${DIAG}). Output:"
  printf '%s\n' "${OUT}"
  exit 1
fi
exit 0
