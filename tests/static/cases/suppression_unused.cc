// Suppression-mechanism case: a suppression whose violation is gone — the
// analyzer must fail (exit 1) and report it as unused, so stale escapes
// cannot linger after the code they excused is fixed.
#include <atomic>
#include <cstdint>

namespace mv3c {

inline std::atomic<uint64_t> g_probe{0};

uint64_t FixedSnapshot() {
  // mv3c-lint: allow(atomic_memory_order) stale: the load below names its order
  return g_probe.load(std::memory_order_acquire);
}

}  // namespace mv3c
