// Analyzer-rule control (timestamp_discipline): the sanctioned spellings
// for everything ts_discipline.cc does wrong — helper projections for the
// epoch field, plain integer order between two timestamps (the ordering
// contract compares composed values directly). Must produce zero findings.
#include <cstdint>

#include "mvcc/timestamp.h"

namespace mv3c {

uint64_t GoodEpochOf(Timestamp ts) {
  return TsEpoch(ts);  // clean: the helper owns the layout
}

bool GoodCommittedInEpoch(Timestamp commit_ts, uint64_t wal_epoch) {
  return TsEpoch(commit_ts) == wal_epoch;  // clean: projected first
}

bool Visible(Timestamp ts, Timestamp start) {
  return ts < start;  // clean: plain integer order is the contract
}

Timestamp Watermark(Timestamp a, Timestamp b) {
  return a < b ? a : b;  // clean: min over composed values is fine
}

}  // namespace mv3c
