// Analyzer-rule control (lock_scope_io): the same calls as
// lock_scope_io.cc, but the guard scope closes before the I/O runs — the
// detach-then-free shape VersionArena uses. Planted at src/wal/ so the
// raw-I/O rule's exemption keeps this TU single-rule. Must produce zero
// findings.
#include <unistd.h>

#include "common/spinlock.h"

int FlushAfterUnlock(mv3c::SpinLock& l, int fd) {
  {
    mv3c::SpinLockGuard g(l);
  }
  return fsync(fd);  // clean: the critical section already closed
}

void FreeOutsideLock(mv3c::SpinLock& l, int* p) {
  {
    mv3c::SpinLockGuard g(l);
  }
  delete p;  // clean: detached under the lock, released outside it
}
