// Positive control for guarded_by_violation.cc: the same access through
// SpinLockGuard satisfies the analysis. Must PASS under both compilers.
#include "common/spinlock.h"
#include "common/thread_safety.h"

struct Counter {
  mv3c::SpinLock lock;
  long value MV3C_GUARDED_BY(lock) = 0;

  void Bump() {
    mv3c::SpinLockGuard g(lock);
    ++value;
  }
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
