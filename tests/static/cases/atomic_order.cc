// Analyzer-rule case (atomic_memory_order): atomic operations relying on
// the defaulted seq_cst order — the exact shape the rule's first real
// catch had in src/driver/thread_driver.h:107-112. Compiles fine; the
// self-test plants it at src/shadow_flag.cc and expects hits on the
// defaulted load, the defaulted store, and the implicit-conversion read.
#include <atomic>
#include <cstdint>

namespace mv3c {

inline std::atomic<uint64_t> g_shadow_state{0};

uint64_t SnapshotDefaulted() {
  return g_shadow_state.load();  // rule hit: defaulted seq_cst load
}

void PublishDefaulted(uint64_t v) {
  g_shadow_state.store(v);  // rule hit: defaulted seq_cst store
}

uint64_t ImplicitRead() {
  return g_shadow_state;  // rule hit: conversion operator = seq_cst load
}

}  // namespace mv3c
