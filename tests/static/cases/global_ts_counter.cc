// Lint-rule case (no_global_ts_counter.query): an atomic
// timestamp-sequence counter outside the TID allocator — the pre-§5h
// `ts_seq_` shape resurrected both as a member and as a global. Compiles
// fine; the self-test plants this at a src/mvcc/-shaped path (NOT
// transaction_manager.h) and expects the rule to fire on both decls.
#include <atomic>
#include <cstdint>

namespace mv3c {

class ShadowManager {
  std::atomic<uint64_t> ts_seq_{1};  // rule hit: second timestamp authority

 public:
  uint64_t NextCommitTs() {
    return ts_seq_.fetch_add(1, std::memory_order_relaxed);
  }
};

std::atomic<uint64_t> global_txn_counter{0};  // rule hit: global variant

uint64_t Touch() {
  ShadowManager m;
  // Explicit order: this case targets the ts-counter rule only and must
  // not also trip atomic_memory_order when planted as a clean control.
  return m.NextCommitTs() + global_txn_counter.load(std::memory_order_relaxed);
}

}  // namespace mv3c
