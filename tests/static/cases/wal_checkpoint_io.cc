// Lint-rule control (no_raw_io_outside_wal.query): the same raw I/O as
// ckpt_raw_io.cc, but the self-test plants it at src/wal/checkpoint.cc —
// inside the rule's exemption. Proves the allowlist covers the checkpoint
// TUs, so the real checkpoint writer keeps lint-clean raw-I/O freedom.
// Must produce zero findings.
#include <unistd.h>

int WriteCkptSegment(int fd, const void* buf, unsigned long n) {
  long wrote = pwrite(fd, buf, n, 0);  // exempt: lives under src/wal/
  if (wrote < 0) return -1;
  return fdatasync(fd);                // exempt: lives under src/wal/
}
