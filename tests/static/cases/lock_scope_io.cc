// Analyzer-rule case (lock_scope_io): blocking I/O and allocator calls
// inside a SpinLock critical section — the TruncateSegmentsBefore bug
// class PR 8 fixed (an unlink+dir-fsync under segments_mu_). Compiles
// fine; the self-test plants it at src/wal/locked_io.cc (inside the
// raw-I/O rule's exemption, isolating this rule) and expects two hits:
// one lexically inside a SpinLockGuard scope, one inside a
// REQUIRES-annotated function.
#include <unistd.h>

#include "common/spinlock.h"
#include "common/thread_safety.h"

int FsyncUnderGuard(mv3c::SpinLock& l, int fd) {
  mv3c::SpinLockGuard g(l);
  return fsync(fd);  // rule hit: blocking syscall under a spinlock
}

void FreeUnderRequires(mv3c::SpinLock& l, int* p) MV3C_REQUIRES(l) {
  delete p;  // rule hit: heap free while the caller holds the lock
}
