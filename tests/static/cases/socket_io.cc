// Lint-rule case (no_raw_io_outside_wal): a socket send() from engine
// code is NOT on the allowlist — only src/server/ and the loadgen may
// talk to the network. Planted at src/mvcc/shadow_socket.cc; the rule
// must fire.
#include <sys/socket.h>

int LeakBytes(int fd, const void* data, unsigned n) {
  return static_cast<int>(send(fd, data, n, 0));  // rule hit
}
