// Lint-rule case (no_raw_io_outside_wal): the serving front-end's
// allowlist sanctions *socket* sends in src/server/, nothing more — a
// file write or fsync there still bypasses the WAL's epoch/CRC framing
// and must fire. The self-test plants this at src/server/frame_writer.cc
// to prove the allowlist is per-callee, not a blanket directory
// exemption.
#include <cstdio>
#include <unistd.h>

int main() {
  std::FILE* f = std::fopen("/dev/null", "wb");
  if (f == nullptr) return 1;
  const char byte = 'x';
  std::fwrite(&byte, 1, 1, f);  // rule hit: durable writes go through wal/
  fsync(fileno(f));             // rule hit: fsync is the WAL's monopoly
  std::fclose(f);
  return 0;
}
