// Lint-rule case (no_raw_io_outside_wal.query): a checkpoint writer that
// grew outside src/wal/ — exactly the shape the checkpoint subsystem
// added, but planted at src/ckpt_writer.cc. Uses the pwrite/fdatasync
// spellings (checkpoint.cc's own calls) rather than raw_io.cc's
// fwrite/fsync so the rule's whole name list stays covered. Must fire.
#include <unistd.h>

int WriteCkptSegment(int fd, const void* buf, unsigned long n) {
  long wrote = pwrite(fd, buf, n, 0);  // rule hit: segment bytes bypass wal/
  if (wrote < 0) return -1;
  return fdatasync(fd);                // rule hit: durability claim outside wal/
}
