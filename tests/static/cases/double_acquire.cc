// Negative-compilation case: re-acquiring a non-reentrant SpinLock that is
// already held (self-deadlock at runtime). Must FAIL under clang
// -Werror=thread-safety-analysis ("acquiring mutex ... that is already
// held"); PASSES under gcc.
#include "common/spinlock.h"

void SelfDeadlock(mv3c::SpinLock& l) {
  mv3c::SpinLockGuard a(l);
  mv3c::SpinLockGuard b(l);  // second acquisition: analysis error
}

int main() {
  mv3c::SpinLock l;
  SelfDeadlock(l);
  return 0;
}
