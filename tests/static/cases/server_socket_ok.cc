// Clean control (no_raw_io_outside_wal allowlist): socket send() from a
// src/server/ TU is sanctioned — network I/O is not durable file I/O, so
// the WAL monopoly does not apply. Planted at src/server/conn.cc; must
// produce zero findings.
#include <sys/socket.h>

int SendAll(int fd, const void* data, unsigned n) {
  return static_cast<int>(send(fd, data, n, 0));
}
