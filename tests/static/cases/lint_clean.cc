// Clean control for the lint self-test: exercises the same headers as the
// violation cases through the sanctioned idioms (SpinLockGuard, arena
// allocation via GarbageCollector-owned lifecycles) and must produce zero
// matches from every rule.
#include "common/spinlock.h"

int main() {
  mv3c::SpinLock l;
  {
    mv3c::SpinLockGuard g(l);
  }
  return 0;
}
