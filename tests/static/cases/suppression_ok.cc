// Suppression-mechanism control: a real violation excused by a
// `mv3c-lint: allow(...)` comment, in both spellings — whole-line (applies
// to the next line) and trailing (applies to its own line). The analyzer
// must report zero findings and zero unused suppressions for this TU.
#include <atomic>
#include <cstdint>

namespace mv3c {

inline std::atomic<uint64_t> g_probe{0};

uint64_t OneShotSnapshot() {
  // mv3c-lint: allow(atomic_memory_order) one-shot CLI probe; seq_cst is fine
  return g_probe.load();
}

void OneShotPublish(uint64_t v) {
  g_probe.store(v);  // mv3c-lint: allow(atomic_memory_order) setup-phase write
}

}  // namespace mv3c
