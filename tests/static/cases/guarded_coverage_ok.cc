// Analyzer-rule control (guarded_by_coverage): every escape hatch the
// audit honors — GUARDED_BY annotation, const, atomic, a lock-owning
// member type, and a self-synchronizing (all-atomic) member type. Must
// produce zero findings.
#include <atomic>
#include <cstdint>

#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c {

struct AllAtomicTicker {
  std::atomic<uint64_t> value{0};
};

class InnerLocked {
 public:
  void Touch() {
    SpinLockGuard g(lock_);
    ++count_;
  }

 private:
  SpinLock lock_;
  uint64_t count_ MV3C_GUARDED_BY(lock_) = 0;
};

class CoveredQueue {
 public:
  void Push() {
    SpinLockGuard g(lock_);
    ++depth_;
    drops_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  SpinLock lock_;
  uint64_t depth_ MV3C_GUARDED_BY(lock_) = 0;  // clean: annotated
  const uint32_t capacity_ = 64;               // clean: const
  std::atomic<uint64_t> drops_{0};             // clean: atomic
  InnerLocked inner_;                          // clean: owns its own lock
  AllAtomicTicker ticker_;                     // clean: self-synchronizing
};

}  // namespace mv3c
