// Negative-compilation case: a scope that acquires a capability and never
// releases it. Must FAIL under clang -Werror=thread-safety-analysis
// ("mutex ... is still held at the end of function"); PASSES under gcc.
#include "common/spinlock.h"

void LeakLock(mv3c::SpinLock& l) {
  l.lock();
  // missing l.unlock(): capability leaks out of the scope
}

int main() {
  mv3c::SpinLock l;
  LeakLock(l);
  return 0;
}
