// Negative-compilation case: touching a MV3C_GUARDED_BY field with no lock
// held. Must FAIL under clang -Werror=thread-safety-analysis; must PASS
// under gcc (the annotations expand to nothing there), which is the
// control proving the failure comes from the analysis, not the code.
#include "common/spinlock.h"
#include "common/thread_safety.h"

struct Counter {
  mv3c::SpinLock lock;
  long value MV3C_GUARDED_BY(lock) = 0;

  void Bump() { ++value; }  // no lock held: thread-safety error
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
