// Lint-rule case (no_stats_outside_obs.query): an ad-hoc *Stats struct
// outside src/obs/ forks the metrics surface. Compiles fine; the lint
// self-test plants it under a src/-shaped path and expects the rule to
// fire.
struct ShadowEngineStats {  // rule hit: belongs in src/obs/engine_stats.h
  long commits = 0;
  long aborts = 0;
};

int main() {
  ShadowEngineStats s;
  s.commits = 1;
  return static_cast<int>(s.commits + s.aborts) - 1;
}
