// Lint-rule case (no_bare_lock_guard.query): std::lock_guard<SpinLock>
// hides the acquisition from the thread-safety analysis. Compiles fine;
// the lint self-test plants it under a src/-shaped path and expects the
// rule to fire.
#include <mutex>

#include "common/spinlock.h"

int main() {
  mv3c::SpinLock l;
  std::lock_guard<mv3c::SpinLock> g(l);  // rule hit: use SpinLockGuard
  return 0;
}
