// Analyzer-rule case (guarded_by_coverage): a class that owns a SpinLock
// but leaves a mutable member with no GUARDED_BY, no atomic, no const —
// the "unannotated = unchecked" hole PR 4's thread-safety gate cannot see
// on its own. Compiles fine; the self-test plants it at
// src/shadow_queue.cc and expects one hit on `depth_`.
#include <cstdint>

#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c {

class ShadowQueue {
 public:
  void Push() {
    SpinLockGuard g(lock_);
    ++depth_;
  }

 private:
  SpinLock lock_;
  uint64_t depth_ = 0;  // rule hit: mutable member with no annotation
};

}  // namespace mv3c
