// Analyzer-rule case (timestamp_discipline): raw bit arithmetic on a
// composed mv3c::Timestamp, and a composed-TID-vs-epoch comparison —
// both must go through the timestamp.h helpers (DESIGN §5h). Compiles
// fine; the self-test plants it at src/mvcc/shadow_epoch.cc and expects
// two hits.
#include <cstdint>

#include "mvcc/timestamp.h"

namespace mv3c {

uint64_t ShadowEpochOf(Timestamp ts) {
  return ts >> 30;  // rule hit: raw shift; use TsEpoch()
}

bool CommittedInEpoch(Timestamp commit_ts, uint64_t wal_epoch) {
  return commit_ts == wal_epoch;  // rule hit: composed TID vs epoch value
}

}  // namespace mv3c
