// Lint-rule case (no_raw_version_new.query): raw new/delete of version
// machinery outside version_arena.{h,cc}. Compiles fine — the violation is
// caught by the AST lint, not the compiler — so this file only feeds the
// lint self-test, which plants it under a src/-shaped path and expects the
// rule to fire on both expressions.
#include "mvcc/gc.h"
#include "mvcc/version.h"

int main() {
  auto* v = new mv3c::Version<long>(nullptr, nullptr, 1, 42);  // rule hit
  delete v;                                                    // rule hit
  auto* r = new mv3c::CommittedRecord();                       // rule hit
  delete r;                                                    // rule hit
  return 0;
}
