// Lint-rule case (no_raw_io_outside_wal.query): raw durable-file I/O
// outside src/wal/ bypasses the log manager's epoch/CRC framing and its
// byte accounting. Compiles fine; the lint self-test plants it under a
// src/-shaped path and expects the rule to fire.
#include <cstdio>
#include <unistd.h>

int main() {
  std::FILE* f = std::fopen("/dev/null", "wb");
  if (f == nullptr) return 1;
  const char byte = 'x';
  std::fwrite(&byte, 1, 1, f);  // rule hit: durable writes go through wal/
  fsync(fileno(f));             // rule hit: fsync is the WAL's monopoly
  std::fclose(f);
  return 0;
}
