// Positive control for nodiscard_violation.cc: the same calls with their
// results consumed. Must PASS under both compilers.
#include "common/status.h"
#include "index/ordered_index.h"

mv3c::StepResult Make();

int main() {
  const bool committed = Make() == mv3c::StepResult::kCommitted;

  mv3c::OrderedIndex<unsigned long, unsigned long, mv3c::SinglePartition> idx;
  const bool inserted = idx.Insert(1, 2);
  return committed && inserted ? 0 : 1;
}
