// Analyzer-rule control (atomic_memory_order): the same operations with
// their orders named, including the single-argument compare_exchange
// overload (which defaults nothing — both orders derive from the one
// argument). Must produce zero findings.
#include <atomic>
#include <cstdint>

namespace mv3c {

inline std::atomic<uint64_t> g_shadow_state{0};

uint64_t SnapshotExplicit() {
  return g_shadow_state.load(std::memory_order_acquire);
}

void PublishExplicit(uint64_t v) {
  g_shadow_state.store(v, std::memory_order_release);
}

uint64_t BumpExplicit() {
  return g_shadow_state.fetch_add(1, std::memory_order_relaxed);
}

bool CasExplicit(uint64_t expect) {
  return g_shadow_state.compare_exchange_strong(expect, expect + 1,
                                                std::memory_order_acq_rel);
}

}  // namespace mv3c
