// Negative-compilation case: discarding [[nodiscard]] results. Must FAIL
// under BOTH compilers with -Werror=unused-result — the loader bug class
// from PR 1 (a failed population insert silently ignored) is what the
// attribute exists to prevent.
#include "common/status.h"
#include "index/ordered_index.h"

mv3c::StepResult Make();

int main() {
  Make();  // error: StepResult is [[nodiscard]]

  mv3c::OrderedIndex<unsigned long, unsigned long, mv3c::SinglePartition> idx;
  idx.Insert(1, 2);  // error: Insert's success bit is [[nodiscard]]
  return 0;
}
