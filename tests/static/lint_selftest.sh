#!/usr/bin/env bash
# Self-test for the static-analysis gate: plants the violation cases under
# a src/-shaped path inside the build tree, synthesizes a
# compile_commands.json, and checks that every rule fires — then checks
# clean controls produce zero findings. Two engines are exercised:
#
#   * mv3c_analyze (tools/mv3c_analyze) — all nine protocol rules, plus
#     the suppression mechanism (honored + unused-is-an-error) and the
#     per-TU result cache. Run directly (not via run_lint.sh) so --root
#     can point at the scratch DB: the planted files live under the build
#     tree, which the repo-rooted wrapper would scope out.
#   * clang-query fallback — the original five matcher rules, driven
#     through run_lint.sh with MV3C_LINT_FALLBACK=1, exactly as a machine
#     without clang dev headers would run them.
#
# Each leg runs iff its tool exists; skips (exit 77) only when BOTH are
# unavailable.
#
# Usage: lint_selftest.sh <repo-root> <scratch-dir> [analyzer-path]

set -u

ROOT="$1"
SCRATCH="$2"
ANALYZER="${3:-}"

HAVE_ANALYZER=0
[[ -n "${ANALYZER}" && -x "${ANALYZER}" ]] && HAVE_ANALYZER=1
HAVE_QUERY=0
"${ROOT}/scripts/lint/find_clang_tool.sh" clang-query >/dev/null 2>&1 \
  && HAVE_QUERY=1

if [[ ${HAVE_ANALYZER} -eq 0 && ${HAVE_QUERY} -eq 0 ]]; then
  echo "SKIP: neither mv3c_analyze nor clang-query available"
  exit 77
fi

make_db() {  # make_db <dir> <case...>  — synthesizes compile_commands.json
  # A case may be spelled "dest/path.cc=case_file.cc" to plant it at a
  # specific src/-relative path (rules scope by path, e.g. the src/wal/
  # raw-I/O exemption); a bare name plants cases/<name> at src/<name>.
  local dir="$1"
  shift
  rm -rf "${dir}"
  mkdir -p "${dir}/src"
  local entries=()
  local c dest srcf
  for c in "$@"; do
    if [[ "${c}" == *=* ]]; then
      dest="${c%%=*}"
      srcf="${c#*=}"
    else
      dest="${c}"
      srcf="${c}"
    fi
    mkdir -p "${dir}/src/$(dirname "${dest}")"
    cp "${ROOT}/tests/static/cases/${srcf}" "${dir}/src/${dest}"
    entries+=("{\"directory\": \"${dir}\",
  \"command\": \"c++ -std=c++20 -I${ROOT}/src -c src/${dest}\",
  \"file\": \"src/${dest}\"}")
  done
  {
    echo "["
    local IFS=,
    echo "${entries[*]}"
    echo "]"
  } > "${dir}/compile_commands.json"
}

FAILED=0

# The shared violations DB: one planted case per rule. The new-rule cases
# are placed to stay single-rule — lock_scope_io.cc sits in src/wal/ so
# its fsync is inside the raw-I/O rule's exemption, and the atomic /
# guarded-coverage plants use "shadow" names that miss the ts-counter
# name regex. ckpt_writer.cc is the checkpoint-shaped raw-I/O violation
# (pwrite/fdatasync outside wal/).
VIOLATION_CASES=(
  raw_new_version.cc bare_lock_guard.cc stats_outside_obs.cc raw_io.cc
  ckpt_writer.cc=ckpt_raw_io.cc mvcc/shadow_ts.cc=global_ts_counter.cc
  wal/locked_io.cc=lock_scope_io.cc mvcc/shadow_epoch.cc=ts_discipline.cc
  shadow_queue.cc=guarded_coverage.cc shadow_flag.cc=atomic_order.cc
  server/frame_writer.cc=server_file_io.cc
  mvcc/shadow_socket.cc=socket_io.cc
)

# The clean control: the same raw I/O as the violation planted at
# src/wal/checkpoint.cc proves the wal/ exemption covers the checkpoint
# TUs; the same atomic ts counter planted at src/mvcc/transaction_manager.h
# proves the TID-allocator exemption is per-file, not per-directory
# (shadow_ts.cc above sits in src/mvcc/ too and must still fire); the _ok
# twins of the four analyzer rules prove each rule's sanctioned spelling
# stays silent.
CLEAN_CASES=(
  lint_clean.cc
  wal/checkpoint.cc=wal_checkpoint_io.cc
  mvcc/transaction_manager.h=global_ts_counter.cc
  wal/unlocked_io.cc=lock_scope_io_ok.cc
  mvcc/shadow_epoch.cc=ts_discipline_ok.cc
  shadow_queue.cc=guarded_coverage_ok.cc
  shadow_flag.cc=atomic_order_ok.cc
  server/conn.cc=server_socket_ok.cc
)

# ---------------------------------------------------------------------------
# Leg 1: mv3c_analyze (all nine rules + suppressions + cache).
# ---------------------------------------------------------------------------
if [[ ${HAVE_ANALYZER} -eq 1 ]]; then
  run_analyzer() {  # run_analyzer <db> [extra-args...]
    local db="$1"
    shift
    "${ANALYZER}" -p "${db}" --root "${db}" "$@" 2>&1
  }

  # 1a. Every rule fires on its planted violation — twice, the second run
  #     served from the per-TU cache (same key, fresh deps), which must
  #     reproduce the findings rather than absorb them.
  make_db "${SCRATCH}/violations" "${VIOLATION_CASES[@]}"
  for pass in cold cached; do
    OUT="$(run_analyzer "${SCRATCH}/violations" \
           --cache-dir "${SCRATCH}/violations/.cache")"
    if [[ $? -ne 1 ]]; then
      echo "FAIL: analyzer (${pass}) over violations did not exit 1:"
      printf '%s\n' "${OUT}"
      FAILED=1
    fi
    for rule in no_raw_version_new no_bare_lock_guard no_stats_outside_obs \
                no_raw_io_outside_wal no_global_ts_counter lock_scope_io \
                timestamp_discipline guarded_by_coverage atomic_memory_order; do
      if ! printf '%s\n' "${OUT}" | grep -Fq "[${rule}]"; then
        echo "FAIL: analyzer (${pass}) — rule ${rule} did not fire:"
        printf '%s\n' "${OUT}"
        FAILED=1
      fi
    done
    # The raw-I/O rule must have hit the checkpoint-shaped TU specifically,
    # not just raw_io.cc — pins the rule's name list to checkpoint.cc's
    # calls.
    if ! printf '%s\n' "${OUT}" | grep -q "ckpt_writer.cc"; then
      echo "FAIL: analyzer (${pass}) missed the checkpoint-shaped raw-I/O TU:"
      printf '%s\n' "${OUT}"
      FAILED=1
    fi
    # The socket allowlist is per-callee, not per-directory: file I/O in
    # src/server/ must still fire, and send() outside the allowlisted
    # paths must fire.
    if ! printf '%s\n' "${OUT}" | grep -q "server/frame_writer.cc"; then
      echo "FAIL: analyzer (${pass}) — file I/O in src/server/ did not fire:"
      printf '%s\n' "${OUT}"
      FAILED=1
    fi
    if ! printf '%s\n' "${OUT}" | grep -q "shadow_socket.cc"; then
      echo "FAIL: analyzer (${pass}) — send() outside the allowlist did not fire:"
      printf '%s\n' "${OUT}"
      FAILED=1
    fi
  done

  # 1b. The clean control must produce zero findings.
  make_db "${SCRATCH}/clean" "${CLEAN_CASES[@]}"
  if ! OUT="$(run_analyzer "${SCRATCH}/clean" --no-cache)"; then
    echo "FAIL: analyzer over the clean control reported findings:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi

  # 1c. Suppressions: a `mv3c-lint: allow(...)` comment (both the
  #     whole-line and trailing spellings) silences a real violation...
  make_db "${SCRATCH}/suppress_ok" shadow_probe.cc=suppression_ok.cc
  if ! OUT="$(run_analyzer "${SCRATCH}/suppress_ok" --no-cache)"; then
    echo "FAIL: honored suppression still reported findings:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi

  # 1d. ...and a suppression with no violation left is itself an error,
  #     so stale escapes cannot linger.
  make_db "${SCRATCH}/suppress_unused" shadow_probe.cc=suppression_unused.cc
  OUT="$(run_analyzer "${SCRATCH}/suppress_unused" --no-cache)"
  if [[ $? -ne 1 ]] || ! printf '%s\n' "${OUT}" | grep -qi "unused"; then
    echo "FAIL: stale suppression was not reported as unused:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi
else
  echo "note: mv3c_analyze not built; analyzer leg skipped"
fi

# ---------------------------------------------------------------------------
# Leg 2: clang-query fallback via run_lint.sh (original five rules).
# ---------------------------------------------------------------------------
if [[ ${HAVE_QUERY} -eq 1 ]]; then
  make_db "${SCRATCH}/violations" "${VIOLATION_CASES[@]}"
  OUT="$(MV3C_LINT_STRICT=1 MV3C_LINT_FALLBACK=1 \
         "${ROOT}/scripts/lint/run_lint.sh" "${SCRATCH}/violations" 2>&1)"
  if [[ $? -ne 1 ]]; then
    echo "FAIL: fallback lint over planted violations did not exit 1:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi
  for rule in no_raw_version_new no_stats_outside_obs no_bare_lock_guard \
              no_raw_io_outside_wal no_global_ts_counter; do
    if ! printf '%s\n' "${OUT}" | grep -q "FAIL ${rule}"; then
      echo "FAIL: fallback rule ${rule} did not fire:"
      printf '%s\n' "${OUT}"
      FAILED=1
    fi
  done
  if ! printf '%s\n' "${OUT}" | grep -q "ckpt_writer.cc"; then
    echo "FAIL: fallback missed the checkpoint-shaped raw-I/O TU:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi

  make_db "${SCRATCH}/clean" "${CLEAN_CASES[@]}"
  if ! OUT="$(MV3C_LINT_STRICT=1 MV3C_LINT_FALLBACK=1 \
              "${ROOT}/scripts/lint/run_lint.sh" "${SCRATCH}/clean" 2>&1)"; then
    echo "FAIL: fallback lint over the clean control reported findings:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi
else
  echo "note: clang-query not on PATH; fallback leg skipped"
fi

exit "${FAILED}"
