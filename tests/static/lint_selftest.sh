#!/usr/bin/env bash
# Self-test for the structured lint suite (scripts/lint/): plants the
# violation cases under a src/-shaped path inside the build tree, points
# run_lint.sh at a synthetic compile_commands.json, and checks that every
# rule fires — then checks a clean control produces zero findings. Skips
# (exit 77) when clang-query is unavailable.
#
# Usage: lint_selftest.sh <repo-root> <scratch-dir>

set -u

ROOT="$1"
SCRATCH="$2"

found=0
for cand in clang-query clang-query-20 clang-query-19 clang-query-18 \
            clang-query-17 clang-query-16 clang-query-15 clang-query-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    found=1
    break
  fi
done
if [[ ${found} -eq 0 ]]; then
  echo "SKIP: clang-query not on PATH"
  exit 77
fi

make_db() {  # make_db <dir> <case...>  — synthesizes compile_commands.json
  # A case may be spelled "dest/path.cc=case_file.cc" to plant it at a
  # specific src/-relative path (rules scope by path, e.g. the src/wal/
  # raw-I/O exemption); a bare name plants cases/<name> at src/<name>.
  local dir="$1"
  shift
  rm -rf "${dir}"
  mkdir -p "${dir}/src"
  local entries=()
  local c dest srcf
  for c in "$@"; do
    if [[ "${c}" == *=* ]]; then
      dest="${c%%=*}"
      srcf="${c#*=}"
    else
      dest="${c}"
      srcf="${c}"
    fi
    mkdir -p "${dir}/src/$(dirname "${dest}")"
    cp "${ROOT}/tests/static/cases/${srcf}" "${dir}/src/${dest}"
    entries+=("{\"directory\": \"${dir}\",
  \"command\": \"c++ -std=c++20 -I${ROOT}/src -c src/${dest}\",
  \"file\": \"src/${dest}\"}")
  done
  {
    echo "["
    local IFS=,
    echo "${entries[*]}"
    echo "]"
  } > "${dir}/compile_commands.json"
}

FAILED=0

# 1. Every rule must fire on its violation case. ckpt_writer.cc is the
#    checkpoint-shaped raw-I/O violation (pwrite/fdatasync outside wal/).
make_db "${SCRATCH}/violations" \
  raw_new_version.cc bare_lock_guard.cc stats_outside_obs.cc raw_io.cc \
  ckpt_writer.cc=ckpt_raw_io.cc mvcc/shadow_ts.cc=global_ts_counter.cc
OUT="$(MV3C_LINT_STRICT=1 "${ROOT}/scripts/lint/run_lint.sh" \
       "${SCRATCH}/violations" 2>&1)"
if [[ $? -ne 1 ]]; then
  echo "FAIL: lint over planted violations did not exit 1. Output:"
  printf '%s\n' "${OUT}"
  FAILED=1
fi
for rule in no_raw_version_new no_stats_outside_obs no_bare_lock_guard \
            no_raw_io_outside_wal no_global_ts_counter; do
  if ! printf '%s\n' "${OUT}" | grep -q "FAIL ${rule}"; then
    echo "FAIL: rule ${rule} did not fire on its violation case. Output:"
    printf '%s\n' "${OUT}"
    FAILED=1
  fi
done
# The raw-I/O rule must have hit the checkpoint-shaped TU specifically,
# not just raw_io.cc — pins the rule's name list to checkpoint.cc's calls.
if ! printf '%s\n' "${OUT}" | grep -q "ckpt_writer.cc"; then
  echo "FAIL: no_raw_io_outside_wal missed the checkpoint-shaped TU:"
  printf '%s\n' "${OUT}"
  FAILED=1
fi

# 2. The clean control must produce zero findings. The same raw I/O as
#    the violation, planted at src/wal/checkpoint.cc, proves the rule's
#    wal/ exemption covers the checkpoint TUs; the same atomic ts counter
#    planted at src/mvcc/transaction_manager.h proves the TID-allocator
#    exemption is per-file, not per-directory (shadow_ts.cc above sits in
#    src/mvcc/ too and must still fire).
make_db "${SCRATCH}/clean" lint_clean.cc \
  wal/checkpoint.cc=wal_checkpoint_io.cc \
  mvcc/transaction_manager.h=global_ts_counter.cc
if ! OUT="$(MV3C_LINT_STRICT=1 "${ROOT}/scripts/lint/run_lint.sh" \
            "${SCRATCH}/clean" 2>&1)"; then
  echo "FAIL: lint over the clean control reported findings:"
  printf '%s\n' "${OUT}"
  FAILED=1
fi

exit "${FAILED}"
