// Checkpoint subsystem tests (DESIGN §5g): truncation safety — after a
// checkpoint deletes WAL history, two-phase recovery (checkpoint load +
// suffix replay) must produce byte-identical visible state — digest
// equivalence against un-truncated genesis replay for all four workloads
// and both storage families, manifest fallback past manual corruption
// (a damaged checkpoint must never be preferred over an older valid one),
// and the recovery scan diagnostics (no-log vs torn-tail vs
// corrupt-interior, with the damage position reported).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "occ/occ_engine.h"
#include "sv/sv_executor.h"
#include "wal/catalog.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c {
namespace {

namespace fs = std::filesystem;

class WalCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_ckpt_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Tiny segments force rotation so truncation has files to delete.
  wal::WalConfig Config(uint64_t segment_bytes = 4096) {
    wal::WalConfig c;
    c.dir = dir_.string();
    c.ack = wal::WalConfig::Ack::kAsync;
    c.segment_bytes = segment_bytes;
    return c;
  }

  wal::CheckpointConfig CkptConfig(bool truncate) {
    wal::CheckpointConfig c;
    c.dir = dir_.string();
    c.interval_ms = 0;  // manual TakeCheckpoint only
    c.truncate_wal = truncate;
    return c;
  }

  uint64_t CountWalSegments() {
    uint64_t n = 0;
    for (const auto& e : fs::directory_iterator(dir_)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("wal-", 0) == 0) ++n;
    }
    return n;
  }

  fs::path dir_;
};

// --- Banking: truncation actually deletes history and recovery still
// lands on the live state -------------------------------------------------

TEST_F(WalCkptTest, BankingTruncationSafety) {
  constexpr int64_t kAccounts = 100;
  constexpr int64_t kInitial = 10'000;

  TransactionManager mgr;
  mgr.EnableWal(Config());
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();

  uint64_t truncated = 0;
  {
    wal::Checkpointer ck(CkptConfig(/*truncate=*/true), mgr.wal(),
                         cat.CheckpointSourceProvider());
    banking::TransferGenerator gen(kAccounts, 100, /*seed=*/21);
    Mv3cExecutor e(&mgr);
    for (int i = 1; i <= 1500; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
      if (i % 300 == 0) {
        ASSERT_TRUE(mgr.wal()->FlushNow());
        ASSERT_TRUE(ck.TakeCheckpoint()) << "round " << i / 300;
      }
    }
    EXPECT_EQ(ck.published_seq(), 5u);
    const obs::MetricsSnapshot ms = ck.metrics().Snapshot();
    truncated = ms.Value("ckpt_wal_segments_truncated");
    EXPECT_EQ(ms.Value("ckpt_rounds"), 5u);
    EXPECT_EQ(ms.Value("ckpt_failures"), 0u);
    EXPECT_GT(ms.Value("ckpt_records"), 0u);
    // retain=2: checkpoints 1..3 were retired.
    EXPECT_EQ(ms.Value("ckpt_retired"), 3u);
  }
  // The point of the exercise: WAL history is GONE (the 4KB segments the
  // run rotated through were deleted up to checkpoint 4's cut).
  EXPECT_GT(truncated, 0u);
  const uint64_t total_segments =
      mgr.wal()->metrics().Snapshot().Value("wal_segments");
  EXPECT_LT(CountWalSegments(), total_segments);

  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  const wal::TableDigest before = wal::DigestMvccTable(db.accounts);
  const int64_t total_before = db.TotalBalance();
  EXPECT_EQ(total_before, kAccounts * kInitial);

  // Genesis replay is now impossible by construction; two-phase recovery
  // must reproduce the exact visible state from checkpoint 5 + suffix.
  TransactionManager mgr2;
  banking::BankingDb db2(&mgr2, kAccounts, kInitial);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.RecoverWithCheckpoints(dir_.string());
  EXPECT_TRUE(rep.used_checkpoint);
  EXPECT_EQ(rep.checkpoint_seq, 5u);
  EXPECT_EQ(rep.manifests_skipped, 0u);
  EXPECT_EQ(rep.state, wal::LogDirState::kClean) << rep.stop_reason;
  EXPECT_GT(rep.checkpoint_records_loaded, 0u);
  EXPECT_EQ(wal::DigestMvccTable(db2.accounts), before);
  EXPECT_EQ(db2.TotalBalance(), total_before);

  // The recovered clock is past both the checkpoint and the suffix: new
  // transactions run against the recovered state.
  banking::TransferParams p;
  p.from = 1;
  p.to = 2;
  p.amount = 10;
  Mv3cExecutor e2(&mgr2);
  ASSERT_EQ(e2.Run(banking::Mv3cTransferMoney(db2, p)),
            StepResult::kCommitted);
  EXPECT_EQ(db2.TotalBalance(), total_before);
}

// --- Digest equivalence: checkpoint+suffix vs genesis replay of the SAME
// un-truncated log, per workload ------------------------------------------

/// Shared postcondition bundle for the per-workload equivalence tests.
void ExpectUsedCheckpoint(const wal::RecoveryReport& rep) {
  EXPECT_TRUE(rep.used_checkpoint);
  EXPECT_EQ(rep.manifests_skipped, 0u);
  EXPECT_EQ(rep.records_skipped_unknown_table, 0u);
  EXPECT_EQ(rep.state, wal::LogDirState::kClean) << rep.stop_reason;
}

TEST_F(WalCkptTest, BankingEquivalenceVsGenesis) {
  constexpr int64_t kAccounts = 100;
  constexpr int64_t kInitial = 10'000;
  TransactionManager mgr;
  mgr.EnableWal(Config());
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();
  {
    wal::Checkpointer ck(CkptConfig(/*truncate=*/false), mgr.wal(),
                         cat.CheckpointSourceProvider());
    banking::TransferGenerator gen(kAccounts, 100, /*seed=*/31);
    Mv3cExecutor e(&mgr);
    for (int i = 1; i <= 900; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
      if (i % 400 == 0) { ASSERT_TRUE(ck.TakeCheckpoint()); }
    }
  }
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  const wal::TableDigest live = wal::DigestMvccTable(db.accounts);

  // Path A: two-phase. The suffix holds commits past the second pin; the
  // filter must skip everything the snapshot already captured.
  TransactionManager mgr_a;
  banking::BankingDb db_a(&mgr_a, kAccounts, kInitial);
  wal::Catalog cat_a;
  RegisterWalTables(cat_a, db_a);
  const wal::RecoveryReport rep_a =
      cat_a.RecoverWithCheckpoints(dir_.string());
  ExpectUsedCheckpoint(rep_a);
  EXPECT_EQ(rep_a.checkpoint_seq, 2u);
  EXPECT_EQ(wal::DigestMvccTable(db_a.accounts), live);

  // Path B: genesis replay of the full (un-truncated) log.
  TransactionManager mgr_b;
  banking::BankingDb db_b(&mgr_b, kAccounts, kInitial);
  wal::Catalog cat_b;
  RegisterWalTables(cat_b, db_b);
  const wal::RecoveryReport rep_b = cat_b.Recover(dir_.string());
  EXPECT_FALSE(rep_b.torn_tail) << rep_b.stop_reason;
  EXPECT_EQ(wal::DigestMvccTable(db_b.accounts), live);
}

TEST_F(WalCkptTest, TradingEquivalenceVsGenesis) {
  TransactionManager mgr;
  mgr.EnableWal(Config());
  trading::TradingDb db(&mgr, /*n_securities=*/300, /*n_customers=*/120);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();
  {
    wal::Checkpointer ck(CkptConfig(/*truncate=*/false), mgr.wal(),
                         cat.CheckpointSourceProvider());
    trading::TradingGenerator gen(db, /*alpha=*/0.8,
                                  /*trade_order_percent=*/70, /*seed=*/19);
    Mv3cExecutor e(&mgr);
    for (int i = 1; i <= 600; ++i) {
      const auto t = gen.Next();
      if (t.is_trade_order) {
        (void)e.Run(trading::Mv3cTradeOrder(db, t.order));
      } else {
        (void)e.Run(trading::Mv3cPriceUpdate(db, t.price));
      }
      if (i % 250 == 0) { ASSERT_TRUE(ck.TakeCheckpoint()); }
    }
  }
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  auto digest_all = [](trading::TradingDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestMvccTable(d.securities), wal::DigestMvccTable(d.customers),
        wal::DigestMvccTable(d.trades), wal::DigestMvccTable(d.trade_lines)};
  };
  const std::vector<wal::TableDigest> live = digest_all(db);

  TransactionManager mgr_a;
  trading::TradingDb db_a(&mgr_a, 300, 120);
  wal::Catalog cat_a;
  RegisterWalTables(cat_a, db_a);
  ExpectUsedCheckpoint(cat_a.RecoverWithCheckpoints(dir_.string()));
  EXPECT_EQ(digest_all(db_a), live);

  TransactionManager mgr_b;
  trading::TradingDb db_b(&mgr_b, 300, 120);
  wal::Catalog cat_b;
  RegisterWalTables(cat_b, db_b);
  const wal::RecoveryReport rep_b = cat_b.Recover(dir_.string());
  EXPECT_FALSE(rep_b.torn_tail) << rep_b.stop_reason;
  EXPECT_EQ(digest_all(db_b), live);
}

TEST_F(WalCkptTest, TatpEquivalenceVsGenesis) {
  constexpr uint64_t kSubs = 600;
  TransactionManager mgr;
  mgr.EnableWal(Config());
  tatp::TatpDb db(&mgr, kSubs);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load(3);
  {
    wal::Checkpointer ck(CkptConfig(/*truncate=*/false), mgr.wal(),
                         cat.CheckpointSourceProvider());
    tatp::TatpGenerator gen(kSubs, 77);
    Mv3cExecutor e(&mgr);
    for (int i = 1; i <= 1200; ++i) {
      (void)e.Run(tatp::Mv3cTatpProgram(db, gen.Next()));
      if (i % 500 == 0) { ASSERT_TRUE(ck.TakeCheckpoint()); }
    }
  }
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  auto digest_all = [](tatp::TatpDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestMvccTable(d.subscribers),
        wal::DigestMvccTable(d.access_info),
        wal::DigestMvccTable(d.special_facilities),
        wal::DigestMvccTable(d.call_forwarding)};
  };
  const std::vector<wal::TableDigest> live = digest_all(db);

  // TATP deletes call-forwarding rows: the checkpoint must carry their
  // tombstones (a missing tombstone would resurrect the row — or worse,
  // leave the recovered clock below the deletion's timestamp).
  TransactionManager mgr_a;
  tatp::TatpDb db_a(&mgr_a, kSubs);
  wal::Catalog cat_a;
  RegisterWalTables(cat_a, db_a);
  ExpectUsedCheckpoint(cat_a.RecoverWithCheckpoints(dir_.string()));
  EXPECT_EQ(digest_all(db_a), live);

  TransactionManager mgr_b;
  tatp::TatpDb db_b(&mgr_b, kSubs);
  wal::Catalog cat_b;
  RegisterWalTables(cat_b, db_b);
  const wal::RecoveryReport rep_b = cat_b.Recover(dir_.string());
  EXPECT_FALSE(rep_b.torn_tail) << rep_b.stop_reason;
  EXPECT_EQ(digest_all(db_b), live);
}

tpcc::TpccScale SmallScale() {
  tpcc::TpccScale s;
  s.n_warehouses = 1;
  s.n_districts = 4;
  s.n_customers_per_d = 60;
  s.n_items = 200;
  s.preload_orders_per_d = 40;
  s.preload_new_orders_per_d = 15;
  return s;
}

TEST_F(WalCkptTest, TpccEquivalenceVsGenesis) {
  TransactionManager mgr;
  mgr.EnableWal(Config(/*segment_bytes=*/64 << 10));
  tpcc::TpccDb db(&mgr, SmallScale());
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load(7);
  {
    wal::Checkpointer ck(CkptConfig(/*truncate=*/false), mgr.wal(),
                         cat.CheckpointSourceProvider());
    tpcc::TpccGenerator gen(db.scale(), 17);
    Mv3cExecutor e(&mgr);
    for (int i = 1; i <= 300; ++i) {
      (void)e.Run(tpcc::Mv3cTpccProgram(db, gen.Next()));
      if (i % 120 == 0) { ASSERT_TRUE(ck.TakeCheckpoint()); }
    }
  }
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();
  auto digest_all = [](tpcc::TpccDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestMvccTable(d.warehouses), wal::DigestMvccTable(d.districts),
        wal::DigestMvccTable(d.customers),  wal::DigestMvccTable(d.history),
        wal::DigestMvccTable(d.orders),     wal::DigestMvccTable(d.new_orders),
        wal::DigestMvccTable(d.order_lines), wal::DigestMvccTable(d.items),
        wal::DigestMvccTable(d.stock)};
  };
  const std::vector<wal::TableDigest> live = digest_all(db);

  // Nine tables: this is the case that exercises parallel per-table load.
  TransactionManager mgr_a;
  tpcc::TpccDb db_a(&mgr_a, SmallScale());
  wal::Catalog cat_a;
  RegisterWalTables(cat_a, db_a);
  const wal::RecoveryReport rep_a =
      cat_a.RecoverWithCheckpoints(dir_.string());
  ExpectUsedCheckpoint(rep_a);
  EXPECT_EQ(rep_a.checkpoint_tables_loaded, 9u);
  EXPECT_EQ(digest_all(db_a), live);

  TransactionManager mgr_b;
  tpcc::TpccDb db_b(&mgr_b, SmallScale());
  wal::Catalog cat_b;
  RegisterWalTables(cat_b, db_b);
  const wal::RecoveryReport rep_b = cat_b.Recover(dir_.string());
  EXPECT_FALSE(rep_b.torn_tail) << rep_b.stop_reason;
  EXPECT_EQ(digest_all(db_b), live);
}

// --- Single-version (OCC): the checkpoint captures the unlogged
// population, so recovery no longer needs the reload-then-replay crutch --

TEST_F(WalCkptTest, SvTpccCheckpointCapturesPopulation) {
  const tpcc::TpccScale scale = SmallScale();
  wal::WalConfig config = Config(/*segment_bytes=*/64 << 10);

  tpcc::SvTpccDb db(scale);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  {
    wal::LogManager lm(config);
    OccEngine engine;
    engine.set_wal(&lm);
    db.Load(7);  // non-transactional: NOT in the log
    wal::Checkpointer ck(CkptConfig(/*truncate=*/false), &lm,
                         cat.CheckpointSourceProvider());
    tpcc::TpccGenerator gen(scale, 23);
    SvExecutor<OccEngine> e(&engine);
    e.set_wal(&lm);
    for (int i = 1; i <= 300; ++i) {
      (void)e.Run(tpcc::SvTpccProgram(db, gen.Next()));
      if (i % 120 == 0) { ASSERT_TRUE(ck.TakeCheckpoint()); }
    }
    ASSERT_TRUE(lm.FlushNow());
    lm.Stop();
  }
  auto digest_all = [](tpcc::SvTpccDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestSvTable(d.warehouses),  wal::DigestSvTable(d.districts),
        wal::DigestSvTable(d.customers),   wal::DigestSvTable(d.history),
        wal::DigestSvTable(d.orders),      wal::DigestSvTable(d.new_orders),
        wal::DigestSvTable(d.order_lines), wal::DigestSvTable(d.items),
        wal::DigestSvTable(d.stock)};
  };
  const std::vector<wal::TableDigest> live = digest_all(db);

  // Two-phase recovery into an UNLOADED database: the fuzzy scan captured
  // the population, the if-newer suffix replay reconciles the rest.
  tpcc::SvTpccDb db_a(scale);
  wal::Catalog cat_a;
  RegisterWalTables(cat_a, db_a);
  ExpectUsedCheckpoint(cat_a.RecoverWithCheckpoints(dir_.string()));
  EXPECT_EQ(digest_all(db_a), live);

  // Genesis replay still needs the seed reload (checkpoint-style crutch).
  tpcc::SvTpccDb db_b(scale);
  db_b.Load(7);
  wal::Catalog cat_b;
  RegisterWalTables(cat_b, db_b);
  const wal::RecoveryReport rep_b = cat_b.Recover(dir_.string());
  EXPECT_FALSE(rep_b.torn_tail) << rep_b.stop_reason;
  EXPECT_EQ(digest_all(db_b), live);
}

// --- Manifest fallback: a damaged checkpoint must never be preferred
// over an older valid one ---------------------------------------------------

class WalCkptFallbackTest : public WalCkptTest {
 protected:
  /// Two published checkpoints over a banking history, log un-truncated so
  /// every recovery flavor stays possible. Returns the live digest.
  wal::TableDigest WriteHistoryWithTwoCheckpoints() {
    TransactionManager mgr;
    mgr.EnableWal(Config());
    banking::BankingDb db(&mgr, 100, 10'000);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    db.Load();
    {
      wal::Checkpointer ck(CkptConfig(/*truncate=*/false), mgr.wal(),
                           cat.CheckpointSourceProvider());
      banking::TransferGenerator gen(100, 100, /*seed=*/51);
      Mv3cExecutor e(&mgr);
      for (int i = 1; i <= 800; ++i) {
        (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
        if (i % 350 == 0) { EXPECT_TRUE(ck.TakeCheckpoint()); }
      }
      EXPECT_EQ(ck.published_seq(), 2u);
    }
    EXPECT_TRUE(mgr.wal()->FlushNow());
    mgr.DisableWal();
    return wal::DigestMvccTable(db.accounts);
  }

  void FlipByte(const fs::path& p, std::streamoff from_end) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << p;
    f.seekg(-from_end, std::ios::end);
    char b;
    f.read(&b, 1);
    f.seekp(-from_end, std::ios::end);
    b = static_cast<char>(b ^ 0x01);
    f.write(&b, 1);
  }

  struct Recovered {
    wal::RecoveryReport report;
    wal::TableDigest digest;
    int64_t total = 0;
  };
  Recovered Recover() {
    Recovered r;
    TransactionManager mgr;
    banking::BankingDb db(&mgr, 100, 10'000);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    r.report = cat.RecoverWithCheckpoints(dir_.string());
    r.digest = wal::DigestMvccTable(db.accounts);
    r.total = db.TotalBalance();
    return r;
  }
};

TEST_F(WalCkptFallbackTest, DamagedSegmentFallsBackToOlderCheckpoint) {
  const wal::TableDigest live = WriteHistoryWithTwoCheckpoints();
  // Flip one byte inside checkpoint 2's only table segment: its manifest
  // still reads fine, but the whole-file CRC no longer matches.
  FlipByte(dir_ / wal::CkptDirName(2) / wal::CkptTableFileName(1), 20);
  const Recovered r = Recover();
  EXPECT_TRUE(r.report.used_checkpoint);
  EXPECT_EQ(r.report.checkpoint_seq, 1u);   // fell back
  EXPECT_EQ(r.report.manifests_skipped, 1u);
  EXPECT_EQ(r.digest, live);  // suffix past cut 1 covers the gap
  EXPECT_EQ(r.total, 100 * 10'000);
}

TEST_F(WalCkptFallbackTest, TornManifestFallsBackToOlderCheckpoint) {
  const wal::TableDigest live = WriteHistoryWithTwoCheckpoints();
  // Chop the newest manifest mid-file, as a crash during a (non-atomic)
  // direct write would; ReadManifest must treat it as absent.
  const fs::path man = dir_ / wal::ManifestName(2);
  fs::resize_file(man, fs::file_size(man) - 7);
  const Recovered r = Recover();
  EXPECT_TRUE(r.report.used_checkpoint);
  EXPECT_EQ(r.report.checkpoint_seq, 1u);
  EXPECT_EQ(r.report.manifests_skipped, 1u);
  EXPECT_EQ(r.digest, live);
}

TEST_F(WalCkptFallbackTest, AllCheckpointsDamagedFallsBackToGenesis) {
  const wal::TableDigest live = WriteHistoryWithTwoCheckpoints();
  FlipByte(dir_ / wal::CkptDirName(2) / wal::CkptTableFileName(1), 20);
  FlipByte(dir_ / wal::CkptDirName(1) / wal::CkptTableFileName(1), 20);
  const Recovered r = Recover();
  EXPECT_FALSE(r.report.used_checkpoint);
  EXPECT_EQ(r.report.manifests_skipped, 2u);
  // The log was never truncated, so genesis replay reproduces everything.
  EXPECT_EQ(r.digest, live);
  EXPECT_EQ(r.total, 100 * 10'000);
}

// --- Recovery diagnostics: the scan names the damage and its position ----

class WalCkptDiagnosticsTest : public WalCkptFallbackTest {};

TEST_F(WalCkptDiagnosticsTest, EmptyDirReportsNoLog) {
  TransactionManager mgr;
  banking::BankingDb db(&mgr, 10, 100);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  const wal::RecoveryReport rep = cat.Recover(dir_.string());
  EXPECT_EQ(rep.state, wal::LogDirState::kNoLog);
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_EQ(rep.records_applied, 0u);
  EXPECT_NE(rep.Summary().find("no-log"), std::string::npos)
      << rep.Summary();
}

TEST_F(WalCkptDiagnosticsTest, DamageInLastSegmentIsTornTail) {
  (void)WriteHistoryWithTwoCheckpoints();
  // Damage the LAST segment (tiny segment_bytes => several of them).
  std::vector<fs::path> segs;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      segs.push_back(e.path());
    }
  }
  ASSERT_GE(segs.size(), 2u);
  std::sort(segs.begin(), segs.end());
  fs::resize_file(segs.back(), fs::file_size(segs.back()) - 11);
  TransactionManager mgr;
  banking::BankingDb db(&mgr, 100, 10'000);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  const wal::RecoveryReport rep = cat.Recover(dir_.string());
  EXPECT_EQ(rep.state, wal::LogDirState::kTornTail) << rep.stop_reason;
  EXPECT_EQ(rep.stop_segment, segs.back().filename().string());
  // stop_offset 0 is legitimate (the chop can land inside the segment
  // header of a freshly rotated file); the reason says which layer tore.
  EXPECT_FALSE(rep.stop_reason.empty());
  EXPECT_NE(rep.Summary().find("torn-tail"), std::string::npos)
      << rep.Summary();
  // A torn tail is still a consistent prefix.
  EXPECT_EQ(db.TotalBalance(), 100 * 10'000);
}

TEST_F(WalCkptDiagnosticsTest, DamageInEarlierSegmentIsCorruptInterior) {
  (void)WriteHistoryWithTwoCheckpoints();
  std::vector<fs::path> segs;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      segs.push_back(e.path());
    }
  }
  ASSERT_GE(segs.size(), 2u);
  std::sort(segs.begin(), segs.end());
  // Flip a byte in the middle of the FIRST segment: acknowledged history
  // damaged at rest, which the diagnosis must distinguish from crash
  // residue.
  FlipByte(segs.front(),
           static_cast<std::streamoff>(fs::file_size(segs.front()) / 2));
  TransactionManager mgr;
  banking::BankingDb db(&mgr, 100, 10'000);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  const wal::RecoveryReport rep = cat.Recover(dir_.string());
  EXPECT_EQ(rep.state, wal::LogDirState::kCorruptInterior)
      << rep.stop_reason;
  EXPECT_EQ(rep.stop_segment, segs.front().filename().string());
  EXPECT_NE(rep.Summary().find("corrupt-interior"), std::string::npos)
      << rep.Summary();
}

// With a checkpoint present, damage in history the checkpoint subsumes
// stops the physical scan (validation is deliberately not skipped for
// subsumed blocks), but recovery still lands on the checkpoint image — a
// consistent state at or past everything the damaged epochs held. The
// corrupt-interior diagnosis is what tells the operator the suffix was
// cut short.
TEST_F(WalCkptDiagnosticsTest, CheckpointOutlivesCorruptSubsumedHistory) {
  (void)WriteHistoryWithTwoCheckpoints();
  std::vector<fs::path> segs;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      segs.push_back(e.path());
    }
  }
  ASSERT_GE(segs.size(), 3u);
  std::sort(segs.begin(), segs.end());
  // Damage the OLDEST segment — epochs far below checkpoint 2's cut.
  FlipByte(segs.front(),
           static_cast<std::streamoff>(fs::file_size(segs.front()) / 2));
  const Recovered r = Recover();
  EXPECT_TRUE(r.report.used_checkpoint);
  EXPECT_EQ(r.report.checkpoint_seq, 2u);
  EXPECT_EQ(r.report.state, wal::LogDirState::kCorruptInterior);
  // The checkpoint is a transaction-consistent snapshot, so the recovered
  // state (checkpoint image, suffix cut at the damage) still conserves.
  EXPECT_EQ(r.total, 100 * 10'000);
  EXPECT_GT(r.report.checkpoint_records_loaded, 0u);
}

}  // namespace
}  // namespace mv3c
