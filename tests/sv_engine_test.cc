// Tests for the single-version substrate and the OCC/SILO baselines:
// TID-word semantics, read/write/insert/delete protocols, validation
// failures on read-write conflicts, phantom detection via node sets, and
// TPC-C over the SV store for both engines (consistency after contended
// window runs).

#include <gtest/gtest.h>

#include <thread>

#include "driver/window_driver.h"
#include "occ/occ_engine.h"
#include "silo/silo_engine.h"
#include "sv/sv_executor.h"
#include "workloads/tpcc_sv.h"

namespace mv3c {
namespace {

using namespace mv3c::tpcc;  // NOLINT
using sv::SvTransaction;

struct CounterRow {
  int64_t value = 0;
};
using CounterTable = sv::SvTable<uint64_t, CounterRow>;

template <typename Engine>
ExecStatus Increment(SvTransaction& t, CounterTable& table, uint64_t key) {
  CounterRow row;
  CounterTable::Rec* rec = nullptr;
  if (!t.Read(table, key, &row, &rec)) return ExecStatus::kUserAbort;
  row.value += 1;
  t.Update(table, rec, row);
  return ExecStatus::kOk;
}

template <typename Engine>
class SvEngineTest : public ::testing::Test {
 protected:
  SvEngineTest() : table_("counter", 64) {
    for (uint64_t k = 0; k < 8; ++k) table_.LoadRow(k, CounterRow{100});
  }

  Engine engine_;
  CounterTable table_;
};

using Engines = ::testing::Types<OccEngine, SiloEngine>;
TYPED_TEST_SUITE(SvEngineTest, Engines);

TYPED_TEST(SvEngineTest, ReadUpdateCommit) {
  SvExecutor<TypeParam> e(&this->engine_);
  ASSERT_EQ(e.Run([&](SvTransaction& t) {
              return Increment<TypeParam>(t, this->table_, 1);
            }),
            StepResult::kCommitted);
  CounterRow row;
  this->table_.Find(1)->ReadStable(&row);
  EXPECT_EQ(row.value, 101);
}

TYPED_TEST(SvEngineTest, ConflictingReadFailsValidationAndRetries) {
  SvExecutor<TypeParam> victim(&this->engine_);
  victim.Reset([&](SvTransaction& t) {
    return Increment<TypeParam>(t, this->table_, 2);
  });
  victim.Begin();
  // Execute the read phase manually, then let another txn commit.
  {
    SvTransaction& t = victim.txn();
    t.Clear();
    CounterRow row;
    CounterTable::Rec* rec = nullptr;
    ASSERT_TRUE(t.Read(this->table_, 2, &row, &rec));
    row.value += 1;
    t.Update(this->table_, rec, row);
    SvExecutor<TypeParam> other(&this->engine_);
    ASSERT_EQ(other.Run([&](SvTransaction& t2) {
                return Increment<TypeParam>(t2, this->table_, 2);
              }),
              StepResult::kCommitted);
    // The victim's buffered commit must fail now.
    EXPECT_FALSE(this->engine_.Commit(t));
  }
  // Through the executor, the retry loop converges.
  ASSERT_EQ(victim.Run([&](SvTransaction& t) {
              return Increment<TypeParam>(t, this->table_, 2);
            }),
            StepResult::kCommitted);
  CounterRow row;
  this->table_.Find(2)->ReadStable(&row);
  EXPECT_EQ(row.value, 102);  // +1 (other) +1 (final run); the failed
                              // commit installed nothing
}

TYPED_TEST(SvEngineTest, InsertDeleteRoundTrip) {
  SvExecutor<TypeParam> e(&this->engine_);
  ASSERT_EQ(e.Run([&](SvTransaction& t) {
              if (!t.Insert(this->table_, 50, CounterRow{7})) {
                return ExecStatus::kUserAbort;
              }
              return ExecStatus::kOk;
            }),
            StepResult::kCommitted);
  CounterRow row;
  ASSERT_FALSE(sv::IsAbsent(this->table_.Find(50)->ReadStable(&row)));
  EXPECT_EQ(row.value, 7);
  // Duplicate insert aborts.
  SvExecutor<TypeParam> e2(&this->engine_);
  ASSERT_EQ(e2.Run([&](SvTransaction& t) {
              if (!t.Insert(this->table_, 50, CounterRow{9})) {
                return ExecStatus::kUserAbort;
              }
              return ExecStatus::kOk;
            }),
            StepResult::kUserAborted);
  // Delete makes it absent; re-insert works.
  SvExecutor<TypeParam> e3(&this->engine_);
  ASSERT_EQ(e3.Run([&](SvTransaction& t) {
              CounterRow r;
              CounterTable::Rec* rec = nullptr;
              if (!t.Read(this->table_, 50, &r, &rec)) {
                return ExecStatus::kUserAbort;
              }
              t.Delete(this->table_, rec);
              return ExecStatus::kOk;
            }),
            StepResult::kCommitted);
  EXPECT_TRUE(sv::IsAbsent(this->table_.Find(50)->ReadStable(&row)));
}

TYPED_TEST(SvEngineTest, ConcurrentIncrementsNeverLoseUpdates) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<TypeParam>> engines;
  const bool shared_engine = std::is_same_v<TypeParam, OccEngine>;
  for (int i = 0; i < kThreads; ++i) {
    engines.push_back(std::make_unique<TypeParam>());
  }
  for (int i = 0; i < kThreads; ++i) {
    TypeParam* engine =
        shared_engine ? &this->engine_ : engines[i].get();
    threads.emplace_back([&, engine] {
      SvExecutor<TypeParam> e(engine);
      for (int n = 0; n < kPerThread; ++n) {
        e.MustRun([&](SvTransaction& t) {
          return Increment<TypeParam>(t, this->table_, 5);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  CounterRow row;
  this->table_.Find(5)->ReadStable(&row);
  EXPECT_EQ(row.value, 100 + kThreads * kPerThread);
}

// --- TPC-C over the SV store ---

TpccScale SvTestScale() {
  TpccScale s;
  s.n_warehouses = 1;
  s.n_districts = 4;
  s.n_customers_per_d = 100;
  s.n_items = 500;
  s.preload_orders_per_d = 100;
  s.preload_new_orders_per_d = 30;
  return s;
}

TYPED_TEST(SvEngineTest, TpccMixedWindowRunKeepsConsistency) {
  SvTpccDb db(SvTestScale());
  db.Load(7);
  TpccGenerator gen(db.scale(), 23);
  std::vector<TpccParams> stream;
  for (int i = 0; i < 800; ++i) stream.push_back(gen.Next());

  TypeParam engine;
  WindowDriver<SvExecutor<TypeParam>> driver(8, [&](...) {
    return std::make_unique<SvExecutor<TypeParam>>(&engine);
  });
  const DriveResult res =
      driver.Run(CountedSource<typename SvExecutor<TypeParam>::Program>(
          stream.size(),
          [&](uint64_t i) { return SvTpccProgram(db, stream[i]); }));
  EXPECT_EQ(res.committed + res.user_aborted, stream.size());
  EXPECT_GT(res.committed, res.user_aborted);
  std::string why;
  EXPECT_TRUE(CheckSvConsistency(db, &why)) << why;
}

TYPED_TEST(SvEngineTest, TpccPhantomDetectionViaNodeSets) {
  SvTpccDb db(SvTestScale());
  db.Load(7);
  TypeParam engine;
  // A Delivery transaction observes the new-order queue; a concurrent
  // New-Order inserting into the same district invalidates it.
  SvExecutor<TypeParam> delivery(&engine);
  TpccParams dp;
  dp.type = TpccTxnType::kDelivery;
  dp.w_id = 1;
  dp.carrier_id = 2;
  dp.date = 55;
  delivery.Reset(SvTpccProgram(db, dp));
  delivery.Begin();
  {
    // Run the delivery's read phase only.
    SvTransaction& t = delivery.txn();
    t.Clear();
    ASSERT_EQ(SvTpccProgram(db, dp)(t), ExecStatus::kOk);
    // Concurrent New-Order commits into district 1.
    TpccParams np;
    np.type = TpccTxnType::kNewOrder;
    np.w_id = 1;
    np.d_id = 1;
    np.c_id = 4;
    np.ol_cnt = 5;
    for (int i = 0; i < 5; ++i) {
      np.items[i] = {static_cast<uint64_t>(i + 1), 1, 2};
    }
    SvExecutor<TypeParam> no(&engine);
    ASSERT_EQ(no.Run(SvTpccProgram(db, np)), StepResult::kCommitted);
    // The delivery's buffered commit fails on the node set.
    EXPECT_FALSE(engine.Commit(t));
  }
}

}  // namespace
}  // namespace mv3c
