// Property and stress tests for the index substrates: the concurrent
// cuckoo hash map (primary-key index, §5) and the partitioned ordered
// index (TPC-C secondary access paths). Randomized operation sequences are
// checked against std:: reference models.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "index/cuckoo_map.h"
#include "index/ordered_index.h"

namespace mv3c {
namespace {

TEST(CuckooMapTest, InsertFindErase) {
  CuckooMap<uint64_t, int> map(16);
  EXPECT_TRUE(map.Insert(1, 10));
  EXPECT_TRUE(map.Insert(2, 20));
  EXPECT_FALSE(map.Insert(1, 99));  // duplicate
  int v = 0;
  EXPECT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(map.Find(2, &v));
  EXPECT_EQ(v, 20);
  EXPECT_FALSE(map.Find(3, &v));
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_EQ(map.Size(), 1u);
}

TEST(CuckooMapTest, GrowsPastInitialCapacity) {
  CuckooMap<uint64_t, uint64_t> map(4);
  const size_t initial_buckets = map.BucketCount();
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(map.Insert(i, i * 3));
  }
  EXPECT_GT(map.BucketCount(), initial_buckets);
  EXPECT_EQ(map.Size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i * 3);
  }
}

TEST(CuckooMapTest, ForEachVisitsEveryEntry) {
  CuckooMap<uint64_t, uint64_t> map(64);
  for (uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(map.Insert(i, i));
  uint64_t count = 0, sum = 0;
  map.ForEach([&](uint64_t k, uint64_t v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(sum, 499u * 500 / 2);
}

// Randomized differential test against std::unordered_map.
class CuckooMapRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CuckooMapRandomTest, MatchesReferenceModel) {
  Xoshiro256 rng(GetParam());
  CuckooMap<uint64_t, uint64_t> map(8);
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextBounded(2000);
    switch (rng.NextBounded(3)) {
      case 0: {
        const uint64_t val = rng.Next();
        const bool inserted = map.Insert(key, val);
        const bool ref_inserted = ref.emplace(key, val).second;
        ASSERT_EQ(inserted, ref_inserted);
        break;
      }
      case 1: {
        uint64_t v = 0;
        const bool found = map.Find(key, &v);
        auto it = ref.find(key);
        ASSERT_EQ(found, it != ref.end());
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
      case 2: {
        ASSERT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), ref.size());
  size_t visited = 0;
  map.ForEach([&](uint64_t k, uint64_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(v, it->second);
  });
  ASSERT_EQ(visited, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooMapRandomTest,
                         ::testing::Values(1, 2, 3, 17, 1234567));

TEST(CuckooMapTest, ConcurrentInsertsAndReads) {
  CuckooMap<uint64_t, uint64_t> map(128);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(map.Insert(key, key + 1));
        uint64_t v = 0;
        ASSERT_TRUE(map.Find(key, &v));
        ASSERT_EQ(v, key + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(map.Size(), kThreads * kPerThread);
  for (uint64_t key = 0; key < kThreads * kPerThread; ++key) {
    uint64_t v = 0;
    ASSERT_TRUE(map.Find(key, &v));
    ASSERT_EQ(v, key + 1);
  }
}

TEST(CuckooMapTest, ConcurrentMixedWorkloadKeepsDisjointKeySpacesIntact) {
  CuckooMap<uint64_t, uint64_t> map(64);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      std::unordered_map<uint64_t, uint64_t> ref;
      const uint64_t base = static_cast<uint64_t>(t) << 32;
      for (int op = 0; op < 30000 && !failed; ++op) {
        const uint64_t key = base + rng.NextBounded(512);
        switch (rng.NextBounded(3)) {
          case 0: {
            const bool i1 = map.Insert(key, key);
            const bool i2 = ref.emplace(key, key).second;
            if (i1 != i2) failed = true;
            break;
          }
          case 1: {
            uint64_t v;
            if (map.Find(key, &v) != (ref.count(key) > 0)) failed = true;
            break;
          }
          case 2: {
            if (map.Erase(key) != (ref.erase(key) > 0)) failed = true;
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

// Regression: keys whose entropy is exclusively in the HIGH bits (packed
// composite keys, e.g. TPC-C's (w,d,o,ol) encoding) must still spread over
// buckets. With an identity std::hash and no internal mixing, every such
// key selects the same bucket pair and the map resizes forever once the
// pair overflows.
TEST(CuckooMapTest, HighBitOnlyKeysDoNotCollapse) {
  CuckooMap<uint64_t, uint64_t> map(1 << 10);
  for (uint64_t d = 0; d < 32; ++d) {
    for (uint64_t o = 0; o < 64; ++o) {
      const uint64_t key = (d << 28) * 16 + o * 16;  // low bits repeat
      ASSERT_TRUE(map.Insert(key, d * 1000 + o)) << d << "," << o;
    }
  }
  EXPECT_EQ(map.Size(), 32u * 64u);
  // The table must not have ballooned: 2048 entries fit comfortably in a
  // few thousand buckets.
  EXPECT_LE(map.BucketCount(), 1u << 14);
  uint64_t v = 0;
  ASSERT_TRUE(map.Find((7ULL << 28) * 16 + 5 * 16, &v));
  EXPECT_EQ(v, 7005u);
}

// ---------------------------------------------------------------------------
// OrderedIndex
// ---------------------------------------------------------------------------

struct PairKey {
  uint32_t partition;
  uint64_t seq;
  friend bool operator<(const PairKey& a, const PairKey& b) {
    return a.partition != b.partition ? a.partition < b.partition
                                      : a.seq < b.seq;
  }
  friend bool operator==(const PairKey& a, const PairKey& b) {
    return a.partition == b.partition && a.seq == b.seq;
  }
};
struct PairPartition {
  size_t operator()(const PairKey& k) const { return k.partition; }
};
using TestIndex = OrderedIndex<PairKey, uint64_t, PairPartition, 16>;

TEST(OrderedIndexTest, InsertFindErase) {
  TestIndex idx;
  EXPECT_TRUE(idx.Insert({1, 10}, 100));
  EXPECT_FALSE(idx.Insert({1, 10}, 200));
  uint64_t v = 0;
  EXPECT_TRUE(idx.Find({1, 10}, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(idx.Erase({1, 10}));
  EXPECT_FALSE(idx.Find({1, 10}, &v));
}

TEST(OrderedIndexTest, ScanRangeInOrder) {
  TestIndex idx;
  for (uint64_t s = 0; s < 100; ++s) ASSERT_TRUE(idx.Insert({3, s}, s * 2));
  for (uint64_t s = 0; s < 100; ++s) {
    ASSERT_TRUE(idx.Insert({4, s}, 777));  // other partition
  }
  std::vector<uint64_t> seen;
  idx.ScanRange({3, 10}, {3, 19}, [&](const PairKey& k, uint64_t v) {
    seen.push_back(v);
    return true;
  });
  ASSERT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], (10 + i) * 2);
}

TEST(OrderedIndexTest, ScanRangeReverseAndEarlyStop) {
  TestIndex idx;
  for (uint64_t s = 0; s < 50; ++s) ASSERT_TRUE(idx.Insert({7, s}, s));
  std::vector<uint64_t> seen;
  idx.ScanRangeReverse({7, 0}, {7, 49}, [&](const PairKey&, uint64_t v) {
    seen.push_back(v);
    return seen.size() < 3;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 49u);
  EXPECT_EQ(seen[1], 48u);
  EXPECT_EQ(seen[2], 47u);
}

TEST(OrderedIndexTest, ShardVersionBumpsOnStructuralChange) {
  TestIndex idx;
  const uint64_t v0 = idx.ShardVersion({5, 0});
  ASSERT_TRUE(idx.Insert({5, 1}, 1));
  const uint64_t v1 = idx.ShardVersion({5, 0});
  EXPECT_GT(v1, v0);
  idx.Erase({5, 1});
  EXPECT_GT(idx.ShardVersion({5, 0}), v1);
  // Duplicate insert does not bump.
  ASSERT_TRUE(idx.Insert({5, 2}, 1));
  const uint64_t v2 = idx.ShardVersion({5, 0});
  EXPECT_FALSE(idx.Insert({5, 2}, 9));
  EXPECT_EQ(idx.ShardVersion({5, 0}), v2);
}

TEST(OrderedIndexTest, RandomizedAgainstStdMap) {
  Xoshiro256 rng(42);
  TestIndex idx;
  std::map<PairKey, uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    PairKey key{static_cast<uint32_t>(rng.NextBounded(8)),
                rng.NextBounded(200)};
    switch (rng.NextBounded(4)) {
      case 0:
        ASSERT_EQ(idx.Insert(key, key.seq), ref.emplace(key, key.seq).second);
        break;
      case 1:
        ASSERT_EQ(idx.Erase(key), ref.erase(key) > 0);
        break;
      case 2: {
        uint64_t v;
        ASSERT_EQ(idx.Find(key, &v), ref.count(key) > 0);
        break;
      }
      case 3: {
        // Range scan within the partition, compared to the model.
        const PairKey lo{key.partition, 0};
        const PairKey hi{key.partition, 199};
        std::vector<uint64_t> got;
        idx.ScanRange(lo, hi, [&](const PairKey&, uint64_t v) {
          got.push_back(v);
          return true;
        });
        std::vector<uint64_t> want;
        for (auto it = ref.lower_bound(lo);
             it != ref.end() && !(hi < it->first); ++it) {
          want.push_back(it->second);
        }
        ASSERT_EQ(got, want);
        break;
      }
    }
  }
  ASSERT_EQ(idx.Size(), ref.size());
}

}  // namespace
}  // namespace mv3c
