// OMVCC baseline tests (paper §2.1): precision-locking validation over a
// flat predicate list, early exit at the first conflict, full abort-and-
// restart, and premature aborts on write-write conflicts.

#include <gtest/gtest.h>

#include "omvcc/omvcc_transaction.h"
#include "workloads/banking.h"

namespace mv3c {
namespace {

using banking::AccountRow;
using banking::BankingDb;
using banking::TransferParams;

class OmvccEngineTest : public ::testing::Test {
 protected:
  OmvccEngineTest() : db_(&mgr_, 16, 1000) { db_.Load(); }

  TransactionManager mgr_;
  BankingDb db_;
};

TEST_F(OmvccEngineTest, SimpleCommit) {
  OmvccExecutor e(&mgr_);
  EXPECT_EQ(e.Run(banking::OmvccTransferMoney(db_, {1, 2, 200, true})),
            StepResult::kCommitted);
  EXPECT_EQ(db_.BalanceOf(1), 1000 - 202);
  EXPECT_EQ(db_.BalanceOf(2), 1200);
  EXPECT_EQ(db_.BalanceOf(BankingDb::kFeeAccount), 2);
}

TEST_F(OmvccEngineTest, PredicateListIsFlat) {
  OmvccTransaction t(&mgr_);
  mgr_.Begin(&t.inner());
  ASSERT_EQ(banking::OmvccTransferMoney(db_, {1, 2, 200, true})(t),
            ExecStatus::kOk);
  // Three key-equality predicates, no graph.
  EXPECT_EQ(t.PredicateCount(), 3u);
  t.RollbackAll();
  mgr_.FinishAborted(&t.inner());
}

TEST_F(OmvccEngineTest, ValidationFailureRestartsFromScratch) {
  OmvccExecutor victim(&mgr_);
  victim.Reset(banking::OmvccTransferMoney(db_, {1, 2, 200, true}));
  victim.Begin();
  // Concurrent committed transfer invalidates the victim's fee predicate.
  // OMVCC writes are fail-fast: the victim already wrote the fee account?
  // No — the victim has not executed yet; execute-and-commit the other
  // transaction first, then step the victim: its execution reads the fee
  // account *after* the other committed, but its start timestamp is older,
  // so validation fails (read-write conflict).
  OmvccExecutor other(&mgr_);
  ASSERT_EQ(other.Run(banking::OmvccTransferMoney(db_, {3, 4, 400, true})),
            StepResult::kCommitted);
  StepResult r = victim.Step();
  // Depending on interleaving this is a WW fail-fast (committed version
  // newer than start) — both are "abort and restart" for OMVCC.
  ASSERT_EQ(r, StepResult::kNeedsRetry);
  EXPECT_EQ(victim.stats().ww_restarts + victim.stats().validation_failures,
            1u);
  // Restart succeeds.
  int guard = 0;
  do {
    r = victim.Step();
    ASSERT_LT(++guard, 10);
  } while (r == StepResult::kNeedsRetry);
  ASSERT_EQ(r, StepResult::kCommitted);
  EXPECT_EQ(db_.BalanceOf(BankingDb::kFeeAccount), 2 + 4);
}

TEST_F(OmvccEngineTest, BlindWriteStyleUpdateStillConflictsInOmvcc) {
  // §6.1.1: "PriceUpdate consists of a blind write operation, which does
  // not lead to a conflict in MV3C, but creates a conflict in OMVCC."
  // In OMVCC every update is a read-modify-write with fail-fast WW.
  OmvccExecutor a(&mgr_), b(&mgr_);
  auto bump = [this](int64_t delta) {
    return [this, delta](OmvccTransaction& t) -> ExecStatus {
      auto r = t.Get(db_.accounts, 5, banking::kBalanceMask);
      AccountRow n = *r.row;
      n.balance += delta;
      return t.UpdateRow(db_.accounts, r.object, n, banking::kBalanceMask);
    };
  };
  a.Reset(bump(1));
  b.Reset(bump(2));
  a.Begin();
  b.Begin();
  // a executes but does not commit; b then hits a's uncommitted version.
  ASSERT_EQ(bump(1)(a.txn()), ExecStatus::kOk);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
  EXPECT_EQ(b.stats().ww_restarts, 1u);
  a.txn().RollbackAll();
  mgr_.FinishAborted(&a.txn().inner());
  int guard = 0;
  StepResult r;
  do {
    r = b.Step();
    ASSERT_LT(++guard, 10);
  } while (r == StepResult::kNeedsRetry);
  ASSERT_EQ(r, StepResult::kCommitted);
  EXPECT_EQ(db_.BalanceOf(5), 1002);
}

TEST_F(OmvccEngineTest, UserAbortNeverRestarts) {
  OmvccExecutor e(&mgr_);
  EXPECT_EQ(e.Run(banking::OmvccTransferMoney(db_, {1, 2, 100000, true})),
            StepResult::kUserAborted);
  EXPECT_EQ(e.stats().user_aborts, 1u);
  EXPECT_EQ(db_.BalanceOf(1), 1000);
}

TEST_F(OmvccEngineTest, ReadOnlyCommitsAtStartTimestamp) {
  OmvccExecutor ro(&mgr_);
  int64_t sum = 0;
  ro.Reset(banking::OmvccSumAll(db_, &sum));
  ro.Begin();
  // Concurrent writer commits in between.
  OmvccExecutor w(&mgr_);
  ASSERT_EQ(w.Run(banking::OmvccTransferMoney(db_, {1, 2, 100, true})),
            StepResult::kCommitted);
  ASSERT_EQ(ro.Step(), StepResult::kCommitted);
  EXPECT_EQ(ro.last_commit_ts(), ro.txn().inner().start_ts());
  EXPECT_EQ(sum, 16 * 1000);  // snapshot from before the transfer
}

// OMVCC's scan predicate catches phantom-style changes: a row entering the
// Bonus result set after the scan fails validation.
TEST_F(OmvccEngineTest, ScanPredicateCatchesResultSetChange) {
  OmvccExecutor bonus(&mgr_);
  bonus.Reset(banking::OmvccBonus(db_, 2000));  // nobody qualifies yet
  bonus.Begin();
  // Push account 3 over the threshold concurrently.
  OmvccExecutor w(&mgr_);
  ASSERT_EQ(w.Run([this](OmvccTransaction& t) -> ExecStatus {
              auto r = t.Get(db_.accounts, 3, banking::kBalanceMask);
              AccountRow n = *r.row;
              n.balance = 5000;
              return t.UpdateRow(db_.accounts, r.object, n,
                                 banking::kBalanceMask);
            }),
            StepResult::kCommitted);
  StepResult r = bonus.Step();
  // The bonus wrote nothing (its snapshot has no qualifying accounts), so
  // it is read-only and commits at its start timestamp — consistent.
  ASSERT_EQ(r, StepResult::kCommitted);
  // Run another bonus that DOES write, with a concurrent threshold-crosser.
  OmvccExecutor bonus2(&mgr_);
  bonus2.Reset(banking::OmvccBonus(db_, 4000));  // account 3 qualifies now
  bonus2.Begin();
  OmvccExecutor w2(&mgr_);
  ASSERT_EQ(w2.Run([this](OmvccTransaction& t) -> ExecStatus {
              auto r2 = t.Get(db_.accounts, 7, banking::kBalanceMask);
              AccountRow n = *r2.row;
              n.balance = 4500;
              return t.UpdateRow(db_.accounts, r2.object, n,
                                 banking::kBalanceMask);
            }),
            StepResult::kCommitted);
  r = bonus2.Step();
  ASSERT_EQ(r, StepResult::kNeedsRetry);  // account 7 entered the set
  EXPECT_EQ(bonus2.stats().validation_failures, 1u);
  int guard = 0;
  do {
    r = bonus2.Step();
    ASSERT_LT(++guard, 10);
  } while (r == StepResult::kNeedsRetry);
  ASSERT_EQ(r, StepResult::kCommitted);
  EXPECT_EQ(db_.BalanceOf(3), 5001);
  EXPECT_EQ(db_.BalanceOf(7), 4501);
}

}  // namespace
}  // namespace mv3c
