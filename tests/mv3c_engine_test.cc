// MV3C engine tests: predicate graph construction, the Validation algorithm
// (Algorithm 1), the Repair algorithm (Algorithm 2, including Lemma 2.4
// repair-equals-restart), write-write policies (§2.3.1), blind writes
// (§2.4.1), attribute-level validation (§4.1), result-set reuse (§4.2) and
// exclusive repair (§4.3), exercised through the Banking example of the
// paper (Example 2).

#include <gtest/gtest.h>

#include <vector>

#include "mv3c/mv3c_executor.h"
#include "mv3c/mv3c_transaction.h"

namespace mv3c {
namespace {

// Column ids for attribute-level validation.
constexpr int kColBalance = 0;
constexpr int kColDate = 1;

struct AccountRow {
  int64_t balance = 0;
  int64_t last_date = 0;

  void MergeFrom(const AccountRow& base, ColumnMask modified) {
    if (!modified.Contains(kColBalance)) balance = base.balance;
    if (!modified.Contains(kColDate)) last_date = base.last_date;
  }
};

using AccountTable = Table<int64_t, AccountRow>;
constexpr int64_t kFeeAccount = 0;

class Mv3cEngineTest : public ::testing::Test {
 protected:
  // The Banking tables run with multiple uncommitted versions allowed
  // (§2.3.1 second option): read-modify-write conflicts reach the
  // validation phase and get repaired instead of fail-fasting.
  Mv3cEngineTest() : table_("account", 1024, WwPolicy::kAllowMultiple) {}

  void Seed(int64_t n_accounts, int64_t balance) {
    Mv3cExecutor exec(&mgr_);
    ASSERT_EQ(exec.Run([&](Mv3cTransaction& t) {
                for (int64_t id = 0; id <= n_accounts; ++id) {
                  EXPECT_EQ(t.InsertRow(table_, id,
                                        AccountRow{id == kFeeAccount
                                                       ? int64_t{0}
                                                       : balance,
                                                   0}),
                            WriteStatus::kOk);
                }
                return ExecStatus::kOk;
              }),
              StepResult::kCommitted);
  }

  /// The paper's TransferMoney program (Figure 3) in the MV3C DSL:
  /// P1 = lookup(from); nested P2 = lookup(to), P3 = lookup(fee account).
  Mv3cExecutor::Program TransferMoney(int64_t from, int64_t to,
                                      int64_t amount) {
    return [this, from, to, amount](Mv3cTransaction& t) -> ExecStatus {
      const int64_t fee = amount < 100 ? 1 : amount / 100;
      return t.Lookup(
          table_, from, ColumnMask::Of(kColBalance),
          [this, to, amount, fee](Mv3cTransaction& t, AccountTable::Object* fm,
                                  const AccountRow* fm_row) -> ExecStatus {
            if (fm_row == nullptr || fm_row->balance < amount + fee) {
              return ExecStatus::kUserAbort;
            }
            AccountRow fm_new = *fm_row;
            fm_new.balance -= amount + fee;
            ExecStatus st = t.UpdateRow(table_, fm, fm_new,
                                        ColumnMask::Of(kColBalance));
            if (st != ExecStatus::kOk) return st;
            st = t.Lookup(
                table_, to, ColumnMask::Of(kColBalance),
                [this, amount](Mv3cTransaction& t, AccountTable::Object* to_o,
                               const AccountRow* to_row) -> ExecStatus {
                  if (to_row == nullptr) return ExecStatus::kUserAbort;
                  AccountRow to_new = *to_row;
                  to_new.balance += amount;
                  return t.UpdateRow(table_, to_o, to_new,
                                     ColumnMask::Of(kColBalance));
                });
            if (st != ExecStatus::kOk) return st;
            return t.Lookup(
                table_, kFeeAccount, ColumnMask::Of(kColBalance),
                [this, fee](Mv3cTransaction& t, AccountTable::Object* fa,
                            const AccountRow* fa_row) -> ExecStatus {
                  AccountRow fa_new = *fa_row;
                  fa_new.balance += fee;
                  return t.UpdateRow(table_, fa, fa_new,
                                     ColumnMask::Of(kColBalance));
                });
          });
    };
  }

  int64_t Balance(int64_t id) {
    int64_t out = 0;
    Mv3cExecutor exec(&mgr_);
    exec.MustRun([&](Mv3cTransaction& t) {
      return t.Lookup(table_, id, ColumnMask::Of(kColBalance),
                      [&out](Mv3cTransaction&, AccountTable::Object*,
                             const AccountRow* row) {
                        out = row == nullptr ? -1 : row->balance;
                        return ExecStatus::kOk;
                      });
    });
    return out;
  }

  int64_t TotalBalance() {
    int64_t total = 0;
    Mv3cExecutor exec(&mgr_);
    exec.MustRun([&](Mv3cTransaction& t) {
      return t.Scan(
          table_, [](const AccountRow&) { return true; },
          ColumnMask::Of(kColBalance), false,
          [&total](Mv3cTransaction&,
                   const std::vector<ScanEntry<AccountTable>>& rs) {
            total = 0;
            for (const auto& e : rs) total += e.row.balance;
            return ExecStatus::kOk;
          });
    });
    return total;
  }

  TransactionManager mgr_;
  AccountTable table_;
};

TEST_F(Mv3cEngineTest, SimpleCommit) {
  Seed(10, 1000);
  Mv3cExecutor exec(&mgr_);
  EXPECT_EQ(exec.Run(TransferMoney(1, 2, 200)), StepResult::kCommitted);
  EXPECT_EQ(Balance(1), 1000 - 200 - 2);
  EXPECT_EQ(Balance(2), 1200);
  EXPECT_EQ(Balance(kFeeAccount), 2);
}

TEST_F(Mv3cEngineTest, UserAbortOnInsufficientFunds) {
  Seed(10, 100);
  Mv3cExecutor exec(&mgr_);
  EXPECT_EQ(exec.Run(TransferMoney(1, 2, 5000)), StepResult::kUserAborted);
  EXPECT_EQ(Balance(1), 100);
  EXPECT_EQ(Balance(2), 100);
}

TEST_F(Mv3cEngineTest, PredicateGraphShape) {
  Seed(10, 1000);
  // Build the graph without committing to inspect it.
  Mv3cTransaction t(&mgr_);
  mgr_.Begin(&t.inner());
  ASSERT_EQ(t.RunProgram(TransferMoney(1, 2, 200)), ExecStatus::kOk);
  // P1 (root) with children P2 and P3 (Figure 3).
  ASSERT_EQ(t.PredicateCount(), 3u);
  PredicateBase* p1 = t.predicates()[0];
  PredicateBase* p2 = t.predicates()[1];
  PredicateBase* p3 = t.predicates()[2];
  EXPECT_EQ(p1->parent(), nullptr);
  EXPECT_EQ(p2->parent(), p1);
  EXPECT_EQ(p3->parent(), p1);
  size_t n_children = 0;
  p1->ForEachChild([&](PredicateBase*) { ++n_children; });
  EXPECT_EQ(n_children, 2u);
  // V(X): P1 carries the from-account update, P2/P3 one update each.
  EXPECT_EQ(p1->VersionCount(), 1u);
  EXPECT_EQ(p2->VersionCount(), 1u);
  EXPECT_EQ(p3->VersionCount(), 1u);
  t.RollbackAll();
  mgr_.FinishAborted(&t.inner());
}

// The central scenario of the paper: two TransferMoney transactions with
// disjoint from/to accounts conflict ONLY on the fee account; MV3C repairs
// just predicate P3 instead of restarting (Example 2 continued, §2.5).
TEST_F(Mv3cEngineTest, RepairReexecutesOnlyConflictingPredicate) {
  Seed(10, 1000);
  Mv3cExecutor a(&mgr_);
  Mv3cExecutor b(&mgr_);
  a.Reset(TransferMoney(1, 2, 200));
  b.Reset(TransferMoney(3, 4, 400));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  // b executed? No: Step does execute+validate. Execute b now — it read the
  // fee account before a committed? b began before a committed, so its
  // snapshot predates a's commit; validation must fail on P3.
  StepResult rb = b.Step();
  ASSERT_EQ(rb, StepResult::kNeedsRetry);
  EXPECT_EQ(b.stats().validation_failures, 1u);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);  // repair + revalidate
  EXPECT_EQ(b.stats().repair_rounds, 1u);
  // Only one closure (P3's) re-executed.
  EXPECT_EQ(b.stats().reexecuted_closures, 1u);
  EXPECT_EQ(b.stats().invalidated_predicates, 1u);
  // Money conserved; both fees present.
  EXPECT_EQ(Balance(kFeeAccount), 2 + 4);
  EXPECT_EQ(Balance(1), 1000 - 202);
  EXPECT_EQ(Balance(3), 1000 - 404);
  EXPECT_EQ(TotalBalance(), 11 * 1000 - 1000);  // fee account started at 0
}

// Lemma 2.4: the repaired graph is equivalent to the abort-and-restart
// graph — verified through final database state and graph shape.
TEST_F(Mv3cEngineTest, RepairEquivalentToRestart) {
  Seed(10, 1000);
  // Run the conflict scenario with repair.
  {
    Mv3cExecutor a(&mgr_);
    Mv3cExecutor b(&mgr_);
    a.Reset(TransferMoney(1, 2, 200));
    b.Reset(TransferMoney(3, 4, 400));
    a.Begin();
    b.Begin();
    ASSERT_EQ(a.Step(), StepResult::kCommitted);
    ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
    // Inspect the repaired transaction's graph after repair by stepping.
    ASSERT_EQ(b.Step(), StepResult::kCommitted);
  }
  const int64_t bal1 = Balance(1), bal2 = Balance(2), bal3 = Balance(3),
                bal4 = Balance(4), fee = Balance(kFeeAccount);

  // Fresh database; same scenario but force b to fully restart by running
  // it from scratch after a committed (serial execution).
  TransactionManager mgr2;
  AccountTable table2("account2", 1024, WwPolicy::kAllowMultiple);
  auto seed2 = [&] {
    Mv3cExecutor e(&mgr2);
    e.MustRun([&](Mv3cTransaction& t) {
      for (int64_t id = 0; id <= 10; ++id) {
        t.InsertRow(table2, id, AccountRow{id == kFeeAccount ? 0 : 1000, 0});
      }
      return ExecStatus::kOk;
    });
  };
  seed2();
  auto transfer2 = [&](int64_t from, int64_t to,
                       int64_t amount) -> Mv3cExecutor::Program {
    return [&table2, from, to, amount](Mv3cTransaction& t) -> ExecStatus {
      const int64_t fee2 = amount < 100 ? 1 : amount / 100;
      return t.Lookup(
          table2, from, ColumnMask::Of(kColBalance),
          [&table2, to, amount, fee2](Mv3cTransaction& t,
                                      AccountTable::Object* fm,
                                      const AccountRow* fm_row) -> ExecStatus {
            if (fm_row == nullptr || fm_row->balance < amount + fee2) {
              return ExecStatus::kUserAbort;
            }
            AccountRow fm_new = *fm_row;
            fm_new.balance -= amount + fee2;
            ExecStatus st =
                t.UpdateRow(table2, fm, fm_new, ColumnMask::Of(kColBalance));
            if (st != ExecStatus::kOk) return st;
            st = t.Lookup(table2, to, ColumnMask::Of(kColBalance),
                          [&table2, amount](Mv3cTransaction& t,
                                            AccountTable::Object* to_o,
                                            const AccountRow* to_row) {
                            AccountRow to_new = *to_row;
                            to_new.balance += amount;
                            return t.UpdateRow(table2, to_o, to_new,
                                               ColumnMask::Of(kColBalance));
                          });
            if (st != ExecStatus::kOk) return st;
            return t.Lookup(table2, kFeeAccount, ColumnMask::Of(kColBalance),
                            [&table2, fee2](Mv3cTransaction& t,
                                            AccountTable::Object* fa,
                                            const AccountRow* fa_row) {
                              AccountRow fa_new = *fa_row;
                              fa_new.balance += fee2;
                              return t.UpdateRow(table2, fa, fa_new,
                                                 ColumnMask::Of(kColBalance));
                            });
          });
    };
  };
  Mv3cExecutor a2(&mgr2), b2(&mgr2);
  EXPECT_EQ(a2.Run(transfer2(1, 2, 200)), StepResult::kCommitted);
  EXPECT_EQ(b2.Run(transfer2(3, 4, 400)), StepResult::kCommitted);

  auto balance2 = [&](int64_t id) {
    int64_t out = 0;
    Mv3cExecutor e(&mgr2);
    e.MustRun([&](Mv3cTransaction& t) {
      return t.Lookup(table2, id, ColumnMask::All(),
                      [&out](Mv3cTransaction&, AccountTable::Object*,
                             const AccountRow* row) {
                        out = row->balance;
                        return ExecStatus::kOk;
                      });
    });
    return out;
  };
  EXPECT_EQ(bal1, balance2(1));
  EXPECT_EQ(bal2, balance2(2));
  EXPECT_EQ(bal3, balance2(3));
  EXPECT_EQ(bal4, balance2(4));
  EXPECT_EQ(fee, balance2(kFeeAccount));
}

// First motivating case (Figure 1a): disjoint program paths; only the
// conflicting one re-executes.
TEST_F(Mv3cEngineTest, DisjointRootsRepairIndependently) {
  Seed(10, 1000);
  auto two_updates = [this](int64_t acc_a, int64_t acc_b) {
    return [this, acc_a, acc_b](Mv3cTransaction& t) -> ExecStatus {
      ExecStatus st = t.Lookup(
          table_, acc_a, ColumnMask::Of(kColBalance),
          [this](Mv3cTransaction& t, AccountTable::Object* o,
                 const AccountRow* r) {
            AccountRow n = *r;
            n.balance += 1;
            return t.UpdateRow(table_, o, n, ColumnMask::Of(kColBalance));
          });
      if (st != ExecStatus::kOk) return st;
      return t.Lookup(table_, acc_b, ColumnMask::Of(kColBalance),
                      [this](Mv3cTransaction& t, AccountTable::Object* o,
                             const AccountRow* r) {
                        AccountRow n = *r;
                        n.balance += 10;
                        return t.UpdateRow(table_, o, n,
                                           ColumnMask::Of(kColBalance));
                      });
    };
  };
  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(two_updates(1, 2));
  b.Reset(two_updates(1, 3));  // conflicts with a only on account 1
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);
  EXPECT_EQ(b.stats().reexecuted_closures, 1u);  // only block A re-ran
  EXPECT_EQ(Balance(1), 1002);
  EXPECT_EQ(Balance(2), 1010);
  EXPECT_EQ(Balance(3), 1010);
}

// §2.3.1/§2.4.1: blind writes under kAllowMultiple never conflict.
TEST_F(Mv3cEngineTest, BlindWritesDoNotConflict) {
  Seed(10, 1000);
  table_.set_ww_policy(WwPolicy::kAllowMultiple);
  auto stamp = [this](int64_t date) {
    return [this, date](Mv3cTransaction& t) -> ExecStatus {
      return t.BlindUpdate(table_, kFeeAccount, ColumnMask::Of(kColDate),
                           [date](AccountRow& r) { r.last_date = date; });
    };
  };
  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(stamp(111));
  b.Reset(stamp(222));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);  // no conflict, no repair
  EXPECT_EQ(b.stats().validation_failures, 0u);
  EXPECT_EQ(b.stats().ww_restarts, 0u);
}

// Under kFailFast the same scenario prematurely aborts and restarts.
TEST_F(Mv3cEngineTest, FailFastPolicyRestartsOnWwConflict) {
  Seed(10, 1000);
  table_.set_ww_policy(WwPolicy::kFailFast);
  auto bump = [this]() {
    return [this](Mv3cTransaction& t) -> ExecStatus {
      return t.Lookup(table_, kFeeAccount, ColumnMask::Of(kColBalance),
                      [this](Mv3cTransaction& t, AccountTable::Object* o,
                             const AccountRow* r) {
                        AccountRow n = *r;
                        n.balance += 1;
                        return t.UpdateRow(table_, o, n,
                                           ColumnMask::Of(kColBalance));
                      });
    };
  };
  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(bump());
  b.Reset(bump());
  a.Begin();
  b.Begin();
  // a writes first but doesn't commit yet: step b first -> WW conflict.
  // To stage this we need manual interleaving: run a's program body only.
  ASSERT_EQ(a.txn().RunProgram(bump()), ExecStatus::kOk);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);  // fail-fast restart pending
  EXPECT_EQ(b.stats().ww_restarts, 1u);
  // Let a commit, then b's restart succeeds.
  ASSERT_TRUE(mgr_.TryCommit(&a.txn().inner(), [&](CommittedRecord* h) {
    return a.txn().ValidateAndMark(h);
  }));
  ++a.txn().stats().commits;
  // b may need a couple more restarts until its start timestamp passes a's
  // commit (each restart before that sees a newer committed version and
  // fail-fasts again).
  StepResult r;
  int steps = 0;
  do {
    r = b.Step();
    ASSERT_LT(++steps, 10);
  } while (r == StepResult::kNeedsRetry);
  ASSERT_EQ(r, StepResult::kCommitted);
  EXPECT_GE(b.stats().ww_restarts, 1u);
  EXPECT_EQ(Balance(kFeeAccount), 2);
}

// §4.1 attribute-level validation: updates to a column the predicate does
// not monitor do not invalidate it.
TEST_F(Mv3cEngineTest, AttributeLevelValidationSkipsDisjointColumns) {
  Seed(10, 1000);
  Mv3cExecutor reader(&mgr_);
  // Reader monitors only the balance column of account 5.
  reader.Reset([this](Mv3cTransaction& t) {
    return t.Lookup(table_, 5, ColumnMask::Of(kColBalance),
                    [this](Mv3cTransaction& t, AccountTable::Object* o,
                           const AccountRow* r) {
                      AccountRow n = *r;
                      n.balance += 1;  // write so commit validates
                      return t.UpdateRow(table_, o, n,
                                         ColumnMask::Of(kColBalance));
                    });
  });
  reader.Begin();
  // A concurrent transaction updates only last_date of account 5.
  Mv3cExecutor w(&mgr_);
  ASSERT_EQ(w.Run([this](Mv3cTransaction& t) {
              return t.Lookup(table_, 5, ColumnMask::Of(kColDate),
                              [this](Mv3cTransaction& t,
                                     AccountTable::Object* o,
                                     const AccountRow* r) {
                                AccountRow n = *r;
                                n.last_date = 77;
                                return t.UpdateRow(table_, o, n,
                                                   ColumnMask::Of(kColDate));
                              });
            }),
            StepResult::kCommitted);
  // Despite both touching account 5, the reader commits without repair.
  ASSERT_EQ(reader.Step(), StepResult::kCommitted);
  EXPECT_EQ(reader.stats().validation_failures, 0u);
}

// §4.2 result-set reuse: the Bonus program patches its scan instead of
// re-scanning.
TEST_F(Mv3cEngineTest, ResultSetReuseFixesScan) {
  Seed(20, 400);  // all below the 500 threshold
  // Give accounts 1..3 balance >= 500.
  for (int64_t id = 1; id <= 3; ++id) {
    Mv3cExecutor e(&mgr_);
    ASSERT_EQ(e.Run([&](Mv3cTransaction& t) {
                return t.Lookup(table_, id, ColumnMask::Of(kColBalance),
                                [&](Mv3cTransaction& t,
                                    AccountTable::Object* o,
                                    const AccountRow* r) {
                                  AccountRow n = *r;
                                  n.balance = 600;
                                  return t.UpdateRow(
                                      table_, o, n,
                                      ColumnMask::Of(kColBalance));
                                });
              }),
              StepResult::kCommitted);
  }
  // Bonus: +1 CHF to every account with balance >= 500 (full scan).
  Mv3cExecutor bonus(&mgr_);
  bonus.Reset([this](Mv3cTransaction& t) {
    return t.Scan(
        table_, [](const AccountRow& r) { return r.balance >= 500; },
        ColumnMask::Of(kColBalance), /*reuse_result_set=*/true,
        [this](Mv3cTransaction& t,
               const std::vector<ScanEntry<AccountTable>>& rs) {
          for (const auto& e : rs) {
            AccountRow n = e.row;
            n.balance += 1;
            const ExecStatus st = t.UpdateRow(table_, e.object, n,
                                              ColumnMask::Of(kColBalance));
            if (st != ExecStatus::kOk) return st;
          }
          return ExecStatus::kOk;
        });
  });
  bonus.Begin();
  // Concurrently, account 7 crosses the threshold and commits first.
  Mv3cExecutor w(&mgr_);
  ASSERT_EQ(w.Run([this](Mv3cTransaction& t) {
              return t.Lookup(table_, 7, ColumnMask::Of(kColBalance),
                              [this](Mv3cTransaction& t,
                                     AccountTable::Object* o,
                                     const AccountRow* r) {
                                AccountRow n = *r;
                                n.balance = 700;
                                return t.UpdateRow(
                                    table_, o, n,
                                    ColumnMask::Of(kColBalance));
                              });
            }),
            StepResult::kCommitted);
  ASSERT_EQ(bonus.Step(), StepResult::kNeedsRetry);  // scan invalidated
  ASSERT_EQ(bonus.Step(), StepResult::kCommitted);
  EXPECT_EQ(bonus.stats().result_set_fixes, 1u);
  // Accounts 1..3 and 7 got the bonus.
  EXPECT_EQ(Balance(1), 601);
  EXPECT_EQ(Balance(2), 601);
  EXPECT_EQ(Balance(3), 601);
  EXPECT_EQ(Balance(7), 701);
  EXPECT_EQ(Balance(8), 400);
}

// §4.3 exclusive repair: after the threshold, repair happens inside the
// commit critical section and the transaction commits immediately.
TEST_F(Mv3cEngineTest, ExclusiveRepairCommitsAfterThreshold) {
  Seed(10, 1000);
  Mv3cConfig cfg;
  cfg.exclusive_repair_after = 1;
  Mv3cExecutor victim(&mgr_, cfg);
  victim.Reset(TransferMoney(1, 2, 200));
  victim.Begin();
  // Make it fail once.
  Mv3cExecutor other(&mgr_);
  ASSERT_EQ(other.Run(TransferMoney(3, 4, 400)), StepResult::kCommitted);
  ASSERT_EQ(victim.Step(), StepResult::kNeedsRetry);  // failure #1
  // Second round reaches the exclusive threshold: repair-in-lock commits
  // even if another transaction slips in a commit before the lock.
  Mv3cExecutor other2(&mgr_);
  ASSERT_EQ(other2.Run(TransferMoney(5, 6, 300)), StepResult::kCommitted);
  ASSERT_EQ(victim.Step(), StepResult::kCommitted);
  EXPECT_GE(victim.stats().exclusive_repairs, 1u);
  EXPECT_EQ(Balance(kFeeAccount), 2 + 4 + 3);
}

// Repeated conflicts: repair loops until validation succeeds (Figure 4).
TEST_F(Mv3cEngineTest, MultiRoundRepairConverges) {
  Seed(10, 100000);
  Mv3cExecutor victim(&mgr_);
  victim.Reset(TransferMoney(1, 2, 200));
  victim.Begin();
  for (int round = 0; round < 5; ++round) {
    Mv3cExecutor other(&mgr_);
    ASSERT_EQ(other.Run(TransferMoney(3, 4, 100 + round)),
              StepResult::kCommitted);
    ASSERT_EQ(victim.Step(), StepResult::kNeedsRetry);
  }
  ASSERT_EQ(victim.Step(), StepResult::kCommitted);
  EXPECT_EQ(victim.stats().repair_rounds, 5u);
  EXPECT_EQ(victim.stats().reexecuted_closures, 5u);  // P3 five times
}

// A conflict on the ROOT predicate repairs the whole transaction (worst
// case: equivalent to restart, §6.2).
TEST_F(Mv3cEngineTest, RootConflictReexecutesWholeGraph) {
  Seed(10, 1000);
  Mv3cExecutor victim(&mgr_);
  victim.Reset(TransferMoney(1, 2, 200));
  victim.Begin();
  // Concurrent transfer OUT of account 1 -> invalidates victim's P1 root.
  Mv3cExecutor other(&mgr_);
  ASSERT_EQ(other.Run(TransferMoney(1, 5, 100)), StepResult::kCommitted);
  ASSERT_EQ(victim.Step(), StepResult::kNeedsRetry);
  ASSERT_EQ(victim.Step(), StepResult::kCommitted);
  // Only the root closure re-executed explicitly; it recreated children.
  EXPECT_EQ(victim.stats().reexecuted_closures, 1u);
  EXPECT_EQ(Balance(1), 1000 - 101 - 202);
  EXPECT_EQ(Balance(kFeeAccount), 1 + 2);
}

TEST_F(Mv3cEngineTest, ReadOnlyCommitsWithoutValidation) {
  Seed(10, 1000);
  Mv3cExecutor ro(&mgr_);
  ro.Reset([this](Mv3cTransaction& t) {
    return t.Scan(
        table_, [](const AccountRow&) { return true; }, ColumnMask::All(),
        false,
        [](Mv3cTransaction&, const std::vector<ScanEntry<AccountTable>>&) {
          return ExecStatus::kOk;
        });
  });
  ro.Begin();
  // A concurrent writer commits — irrelevant for the read-only txn.
  Mv3cExecutor w(&mgr_);
  ASSERT_EQ(w.Run(TransferMoney(1, 2, 100)), StepResult::kCommitted);
  ASSERT_EQ(ro.Step(), StepResult::kCommitted);
  EXPECT_EQ(ro.stats().validation_failures, 0u);
  EXPECT_EQ(ro.last_commit_ts(), ro.txn().inner().start_ts());
}

}  // namespace
}  // namespace mv3c
