// Tests for the robustness layer: the starvation-free retry policy
// (common/retry_policy.h) and the deterministic failpoint framework
// (common/failpoint.h). The framework tests drive failpoint::Evaluate()
// directly, so they run in every build; the engine-injection tests need the
// MV3C_FAILPOINT() hooks compiled in (-DMV3C_FAILPOINTS=ON) and skip
// themselves otherwise.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "common/retry_policy.h"
#include "driver/window_driver.h"
#include "index/cuckoo_map.h"
#include "occ/occ_engine.h"
#include "sv/sv_executor.h"
#include "sv/sv_transaction.h"
#include "workloads/banking.h"

namespace mv3c {
namespace {

namespace fp = ::mv3c::failpoint;

using banking::BankingDb;
using banking::TransferParams;

// --- RetryController ---

TEST(RetryControllerTest, GivesUpAtAttemptBudget) {
  RetryPolicy p;
  p.max_attempts = 3;
  RetryController ctrl(p);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kGiveUp);
  EXPECT_EQ(ctrl.attempts(), 3u);
}

TEST(RetryControllerTest, WalksTheEscalationLadderInOrder) {
  RetryPolicy p;
  p.max_attempts = 6;
  p.exclusive_repair_after = 2;
  p.restart_after = 4;
  RetryController ctrl(p);
  // repair -> exclusive repair -> restart -> give up.
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);            // attempt 1
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kExclusiveRepair);  // attempt 2
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kExclusiveRepair);  // attempt 3
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRestart);          // attempt 4
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRestart);          // attempt 5
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kGiveUp);           // attempt 6
}

TEST(RetryControllerTest, UnboundedPolicyNeverGivesUp) {
  RetryController ctrl(RetryPolicy::Unbounded());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);
  }
}

TEST(RetryControllerTest, ResetClearsAttemptCount) {
  RetryPolicy p;
  p.max_attempts = 2;
  RetryController ctrl(p);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kGiveUp);
  ctrl.Reset();
  EXPECT_EQ(ctrl.attempts(), 0u);
  EXPECT_EQ(ctrl.OnFailure(), RetryDecision::kRetry);
}

TEST(RetryControllerTest, JitteredBackoffIsDeterministicPerSeed) {
  RetryPolicy p;
  p.max_attempts = 0;
  p.backoff_initial_us = 1;
  p.backoff_max_us = 8;
  p.jitter_seed = 1234;
  RetryController a(p), b(p);
  for (int i = 0; i < 8; ++i) {
    a.OnFailure();
    b.OnFailure();
  }
  EXPECT_EQ(a.backoff_us_total(), b.backoff_us_total());
}

// --- Failpoint framework (Evaluate() is compiled in every build) ---

class FailpointFrameworkTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::Reset(/*seed=*/1); }
  void TearDown() override { fp::DisarmAll(); }
};

TEST_F(FailpointFrameworkTest, DisarmedSiteNeverFires) {
  EXPECT_FALSE(fp::Evaluate(fp::Site::kPrevalidate));
  EXPECT_EQ(fp::Evaluations(fp::Site::kPrevalidate), 0u);
  EXPECT_EQ(fp::TotalTrips(), 0u);
}

TEST_F(FailpointFrameworkTest, ArmedSiteFiresAndDisarmStops) {
  fp::Arm(fp::Site::kCommitDelta, fp::Config{});
  EXPECT_TRUE(fp::Evaluate(fp::Site::kCommitDelta));
  EXPECT_EQ(fp::Trips(fp::Site::kCommitDelta), 1u);
  fp::Disarm(fp::Site::kCommitDelta);
  EXPECT_FALSE(fp::Evaluate(fp::Site::kCommitDelta));
  EXPECT_EQ(fp::Trips(fp::Site::kCommitDelta), 1u);
}

TEST_F(FailpointFrameworkTest, MaxTripsSelfDisarms) {
  fp::Config cfg;
  cfg.max_trips = 2;
  fp::Arm(fp::Site::kGcReclaim, cfg);
  EXPECT_TRUE(fp::Evaluate(fp::Site::kGcReclaim));
  EXPECT_TRUE(fp::Evaluate(fp::Site::kGcReclaim));
  EXPECT_FALSE(fp::Evaluate(fp::Site::kGcReclaim));
  EXPECT_EQ(fp::Trips(fp::Site::kGcReclaim), 2u);
}

TEST_F(FailpointFrameworkTest, DelayAndYieldActionsReportNoFailure) {
  fp::Config delay;
  delay.action = fp::Action::kDelay;
  delay.delay_us = 1;
  fp::Arm(fp::Site::kRetimestamp, delay);
  EXPECT_FALSE(fp::Evaluate(fp::Site::kRetimestamp));
  EXPECT_EQ(fp::Trips(fp::Site::kRetimestamp), 1u);  // fired, not a failure

  fp::Config yield;
  yield.action = fp::Action::kYield;
  fp::Arm(fp::Site::kCuckooInsert, yield);
  EXPECT_FALSE(fp::Evaluate(fp::Site::kCuckooInsert));
  EXPECT_EQ(fp::Trips(fp::Site::kCuckooInsert), 1u);
}

TEST_F(FailpointFrameworkTest, SameSeedReproducesTheExactFaultSchedule) {
  auto run_once = [](uint64_t seed) {
    fp::Reset(seed);
    fp::Config cfg;
    cfg.probability = 0.37;
    fp::Arm(fp::Site::kPrevalidate, cfg);
    std::vector<bool> fired;
    fired.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      fired.push_back(fp::Evaluate(fp::Site::kPrevalidate));
    }
    const uint64_t hash = fp::ScheduleHash();
    const uint64_t trips = fp::Trips(fp::Site::kPrevalidate);
    fp::DisarmAll();
    return std::tuple(fired, hash, trips);
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  // A probabilistic site must actually be probabilistic.
  EXPECT_GT(std::get<2>(a), 0u);
  EXPECT_LT(std::get<2>(a), 1000u);
  // A different seed produces a different schedule.
  const auto c = run_once(43);
  EXPECT_NE(std::get<1>(a), std::get<1>(c));
}

TEST_F(FailpointFrameworkTest, EverySiteHasAName) {
  for (int i = 0; i < fp::kNumSites; ++i) {
    EXPECT_STRNE(fp::Name(static_cast<fp::Site>(i)), "?");
  }
}

// --- Engine-level injection (needs -DMV3C_FAILPOINTS=ON) ---

class InjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::kEnabled) {
      GTEST_SKIP() << "failpoint hooks compiled out (MV3C_FAILPOINTS=OFF)";
    }
    fp::Reset(/*seed=*/7);
  }
  void TearDown() override { fp::DisarmAll(); }

  static constexpr int64_t kAccounts = 16;
  static constexpr int64_t kInitial = 1'000'000;
};

TEST_F(InjectionTest, Mv3cPrevalidateInjectionForcesRepairAndStillCommits) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  fp::Config cfg;
  cfg.max_trips = 1;
  fp::ScopedArm arm(fp::Site::kPrevalidate, cfg);

  Mv3cExecutor exec(&mgr);
  const TransferParams p{/*from=*/1, /*to=*/2, /*amount=*/100, true};
  ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, p)),
            StepResult::kCommitted);
  EXPECT_EQ(exec.stats().failpoint_trips, 1u);
  EXPECT_GE(exec.stats().validation_failures, 1u);
  EXPECT_GE(exec.stats().repair_rounds, 1u);  // repaired, not restarted
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

// Satellite: a forced delta-validation failure inside TryCommitExclusive
// must be repaired in the critical section and commit on the same attempt
// (§4.3's guarantee), not bounce back out as another failed round.
TEST_F(InjectionTest, ExclusiveRepairInjectionCommitsOnTheSameAttempt) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  fp::Config cfg;
  cfg.max_trips = 1;
  fp::ScopedArm arm(fp::Site::kCommitExclusiveDelta, cfg);

  Mv3cConfig config;
  config.exclusive_repair_after = 0;  // exclusive from the first attempt
  Mv3cExecutor exec(&mgr, config);
  const TransferParams p{/*from=*/3, /*to=*/4, /*amount=*/500, true};
  const int64_t before_from = db.BalanceOf(3);
  ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, p)),
            StepResult::kCommitted);
  EXPECT_EQ(exec.attempts(), 0u) << "must commit without a failed round";
  EXPECT_EQ(exec.stats().exclusive_repairs, 1u);
  EXPECT_EQ(exec.stats().failpoint_trips, 1u);
  EXPECT_GE(exec.stats().repair_rounds, 1u) << "in-lock repair must run";
  EXPECT_EQ(db.BalanceOf(3), before_from - 500 - banking::FeeOf(p));
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

TEST_F(InjectionTest, Mv3cExhaustsBudgetUnderPersistentInjection) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  Mv3cConfig config;
  config.exclusive_repair_after = -1;  // no escape hatch
  config.retry.max_attempts = 6;
  Mv3cExecutor exec(&mgr, config);
  const TransferParams p{/*from=*/5, /*to=*/6, /*amount=*/10, true};
  {
    fp::ScopedArm arm(fp::Site::kPrevalidate, fp::Config{});  // always fail
    ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, p)),
              StepResult::kExhausted);
  }
  EXPECT_EQ(exec.stats().exhausted, 1u);
  EXPECT_EQ(exec.attempts(), 6u);
  EXPECT_EQ(exec.stats().max_rounds, 6u);
  // The exhausted transaction must be fully rolled back and off the active
  // table: the database is unchanged and the system keeps working.
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
  EXPECT_EQ(db.BalanceOf(6), kInitial);
  ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, p)),
            StepResult::kCommitted);
  mgr.CollectGarbage();  // watermark must advance (no leaked active slot)
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

TEST_F(InjectionTest, OmvccExhaustsBudgetUnderPersistentInjection) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  RetryPolicy policy;
  policy.max_attempts = 4;
  OmvccExecutor exec(&mgr, policy);
  const TransferParams p{/*from=*/1, /*to=*/2, /*amount=*/10, true};
  {
    fp::ScopedArm arm(fp::Site::kPrevalidate, fp::Config{});
    ASSERT_EQ(exec.Run(banking::OmvccTransferMoney(db, p)),
              StepResult::kExhausted);
  }
  EXPECT_EQ(exec.stats().exhausted, 1u);
  EXPECT_EQ(exec.attempts(), 4u);
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
  ASSERT_EQ(exec.Run(banking::OmvccTransferMoney(db, p)),
            StepResult::kCommitted);
}

TEST_F(InjectionTest, SpuriousPushConflictRestartsAndCommits) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  fp::Config cfg;
  cfg.max_trips = 1;
  fp::ScopedArm arm(fp::Site::kVersionChainPush, cfg);

  Mv3cExecutor exec(&mgr);
  const TransferParams p{/*from=*/7, /*to=*/8, /*amount=*/50, true};
  ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, p)),
            StepResult::kCommitted);
  EXPECT_GE(exec.stats().ww_restarts, 1u);
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

TEST_F(InjectionTest, SvCommitInjectionRetriesThenCommits) {
  sv::SvTable<uint64_t, int64_t> table("t", 64);
  table.LoadRow(1, 100);
  OccEngine engine;
  auto increment = [&](sv::SvTransaction& t) {
    int64_t v = 0;
    sv::SvTable<uint64_t, int64_t>::Rec* rec = nullptr;
    if (!t.Read(table, 1, &v, &rec)) return ExecStatus::kUserAbort;
    t.Update(table, rec, v + 1);
    return ExecStatus::kOk;
  };
  {
    fp::Config cfg;
    cfg.max_trips = 1;
    fp::ScopedArm arm(fp::Site::kSvCommitValidate, cfg);
    SvExecutor<OccEngine> exec(&engine);
    ASSERT_EQ(exec.Run(increment), StepResult::kCommitted);
    EXPECT_EQ(exec.stats().failpoint_trips, 1u);
    EXPECT_EQ(exec.stats().validation_failures, 1u);
  }
  int64_t v = 0;
  table.Find(1)->ReadStable(&v);
  EXPECT_EQ(v, 101) << "the injected failed attempt must install nothing";

  // Persistent injection exhausts the budget and installs nothing.
  fp::ScopedArm arm(fp::Site::kSvCommitValidate, fp::Config{});
  RetryPolicy policy;
  policy.max_attempts = 3;
  SvExecutor<OccEngine> exec(&engine, policy);
  ASSERT_EQ(exec.Run(increment), StepResult::kExhausted);
  EXPECT_EQ(exec.stats().exhausted, 1u);
  table.Find(1)->ReadStable(&v);
  EXPECT_EQ(v, 101);
}

TEST_F(InjectionTest, CuckooInsertInjectionForcesOneRetryAndStillInserts) {
  CuckooMap<uint64_t, uint64_t> map(16);
  fp::ScopedArm arm(fp::Site::kCuckooInsert, fp::Config{});  // always fire
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(map.Insert(k, k * 3));
  }
  EXPECT_GE(fp::Trips(fp::Site::kCuckooInsert), 200u);
  for (uint64_t k = 0; k < 200; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(map.Find(k, &v));
    EXPECT_EQ(v, k * 3);
  }
  EXPECT_FALSE(map.Insert(5, 1)) << "duplicate detection survives injection";
}

TEST_F(InjectionTest, GcReclaimInjectionDefersButCollectAllDrains) {
  TransactionManager mgr;
  {
    BankingDb db(&mgr, kAccounts, kInitial);
    db.Load();
    Mv3cExecutor exec(&mgr);
    fp::ScopedArm arm(fp::Site::kGcReclaim, fp::Config{});
    banking::TransferGenerator gen(kAccounts, /*fee_percent=*/100, 3);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(exec.Run(banking::Mv3cTransferMoney(db, gen.Next())),
                StepResult::kCommitted);
      if (i % 32 == 0) mgr.CollectGarbage();  // reclaim suppressed
    }
    mgr.CollectGarbage();
    EXPECT_GT(mgr.gc().PendingCount(), 0u)
        << "injected lagging collector must leave a backlog";
    // CollectAll bypasses the failpoint (teardown contract).
    EXPECT_GT(mgr.gc().CollectAll(), 0u);
    EXPECT_EQ(mgr.gc().PendingCount(), 0u);
    EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
  }
}

// The driver-level round cap abandons a spinning transaction even when the
// executor's own budget is disabled (the WindowDriver starvation backstop).
TEST_F(InjectionTest, WindowDriverRoundCapGivesUpSpinningTransactions) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  fp::ScopedArm arm(fp::Site::kPrevalidate, fp::Config{});  // always fail
  Mv3cConfig config;
  config.exclusive_repair_after = -1;
  config.retry = RetryPolicy::Unbounded();
  WindowDriver<Mv3cExecutor> driver(
      2, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr, config); },
      [&] { mgr.CollectGarbage(); });
  driver.set_round_cap(5);
  banking::TransferGenerator gen(kAccounts, /*fee_percent=*/100, 11);
  std::vector<TransferParams> stream;
  for (int i = 0; i < 8; ++i) stream.push_back(gen.Next());
  const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(), [&](uint64_t i) {
        return banking::Mv3cTransferMoney(db, stream[i]);
      }));
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.exhausted, stream.size());
  EXPECT_EQ(r.max_rounds, 5u);
  EXPECT_EQ(r.escalations, stream.size() * 5);
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

}  // namespace
}  // namespace mv3c
