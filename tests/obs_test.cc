// Tests for the observability layer (src/obs/): histogram bucketing and
// percentiles, snapshot merging, counter registration, and the per-thread
// event tracer (wrap-around, drain order). Histogram/tracer internals only
// exist under -DMV3C_OBS=ON; the snapshot/counter tests run in every build
// because counters are always on.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/engine_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mv3c::obs {
namespace {

// ---------------------------------------------------------------------------
// Always-on: MetricsRegistry counters and MetricsSnapshot merging.

TEST(MetricsRegistry, CountersViewLiveFields) {
  uint64_t commits = 0, peak = 0;
  MetricsRegistry reg;
  reg.RegisterCounter("commits", &commits);
  reg.RegisterCounter("peak", &peak, MergeKind::kMax);

  commits = 7;
  peak = 3;
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.Value("commits"), 7u);
  EXPECT_EQ(s.Value("peak"), 3u);
  EXPECT_TRUE(s.Has("commits"));
  EXPECT_FALSE(s.Has("aborts"));
  EXPECT_EQ(s.Value("aborts"), 0u);  // absent counters read as zero

  // The snapshot is a copy; later increments need a new snapshot.
  commits = 9;
  EXPECT_EQ(s.Value("commits"), 7u);
  EXPECT_EQ(reg.Snapshot().Value("commits"), 9u);
}

TEST(MetricsSnapshot, MergeSumsAndMaxes) {
  uint64_t a_commits = 10, a_peak = 5;
  uint64_t b_commits = 4, b_peak = 8;
  MetricsRegistry a, b;
  a.RegisterCounter("commits", &a_commits);
  a.RegisterCounter("peak", &a_peak, MergeKind::kMax);
  b.RegisterCounter("commits", &b_commits);
  b.RegisterCounter("peak", &b_peak, MergeKind::kMax);
  b.RegisterCounter("only_b", &b_commits);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.Value("commits"), 14u);  // kSum
  EXPECT_EQ(merged.Value("peak"), 8u);      // kMax
  EXPECT_EQ(merged.Value("only_b"), 4u);    // adopted from the other side
}

TEST(MetricsSnapshot, EngineStatsRegisterUnderNativeNames) {
  Mv3cStats s;
  s.commits = 3;
  s.repair_rounds = 11;
  s.max_rounds = 4;
  MetricsRegistry reg;
  RegisterCounters(&reg, &s);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("commits"), 3u);
  EXPECT_EQ(snap.Value("repair_rounds"), 11u);
  EXPECT_EQ(snap.Value("max_rounds"), 4u);

  // max_rounds merges as a high-water mark, not a sum.
  Mv3cStats s2;
  s2.max_rounds = 2;
  s2.commits = 1;
  MetricsRegistry reg2;
  RegisterCounters(&reg2, &s2);
  snap.Merge(reg2.Snapshot());
  EXPECT_EQ(snap.Value("max_rounds"), 4u);
  EXPECT_EQ(snap.Value("commits"), 4u);
}

TEST(MetricsSnapshot, JsonSerialization) {
  uint64_t commits = 12;
  MetricsRegistry reg;
  reg.RegisterCounter("commits", &commits);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.CountersJson(), "{\"commits\":12}");
  // No phase samples recorded -> empty phases object in every build.
  EXPECT_EQ(s.PhasesJson(), "{}");
}

TEST(HistogramSnapshot, EmptyPercentilesAreZero) {
  HistogramSnapshot h;
  EXPECT_EQ(h.PercentileTicks(0.5), 0u);
  EXPECT_EQ(h.PercentileTicks(1.0), 0u);
  EXPECT_EQ(h.MaxNs(), 0.0);
  EXPECT_EQ(h.MeanNs(), 0.0);
}

#if defined(MV3C_OBS_ENABLED)

// ---------------------------------------------------------------------------
// ON-only: LatencyHistogram bucket math and percentile semantics.

TEST(LatencyHistogram, BucketBoundaries) {
  // Bucket i holds [2^i, 2^(i+1)); zero lands in bucket 0 with {1}.
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 0);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 1);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 2);
  EXPECT_EQ(LatencyHistogram::BucketOf(7), 2);
  EXPECT_EQ(LatencyHistogram::BucketOf(8), 3);
  EXPECT_EQ(LatencyHistogram::BucketOf(uint64_t{1} << 20), 20);
  EXPECT_EQ(LatencyHistogram::BucketOf((uint64_t{1} << 21) - 1), 20);
  EXPECT_EQ(LatencyHistogram::BucketOf(~uint64_t{0}), 63);
}

TEST(LatencyHistogram, SingleSampleIsExactAtEveryQuantile) {
  LatencyHistogram h;
  h.Record(1000);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  // Bucket upper edge would be 1023; the max-clamp makes it exact.
  EXPECT_EQ(s.PercentileTicks(0.0), 1000u);
  EXPECT_EQ(s.PercentileTicks(0.5), 1000u);
  EXPECT_EQ(s.PercentileTicks(0.99), 1000u);
  EXPECT_EQ(s.PercentileTicks(1.0), 1000u);
}

TEST(LatencyHistogram, PercentilesPickTheRightBucket) {
  LatencyHistogram h;
  // 90 fast samples in bucket 3 ([8,16)), 10 slow ones in bucket 10
  // ([1024,2048)).
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(1500);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max_ticks, 1500u);
  // p50 and p90 fall in the fast bucket: upper edge 15.
  EXPECT_EQ(s.PercentileTicks(0.50), 15u);
  EXPECT_EQ(s.PercentileTicks(0.90), 15u);
  // p99 falls in the slow bucket: upper edge 2047, clamped to max 1500.
  EXPECT_EQ(s.PercentileTicks(0.99), 1500u);
  EXPECT_EQ(s.PercentileTicks(1.0), 1500u);
}

TEST(LatencyHistogram, MergeAccumulates) {
  LatencyHistogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(4000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  const HistogramSnapshot s = a.Snapshot();
  EXPECT_EQ(s.sum_ticks, 4030u);
  EXPECT_EQ(s.max_ticks, 4000u);
}

TEST(HistogramSnapshot, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (uint64_t v : {3u, 9u, 100u}) {
    a.Record(v);
    both.Record(v);
  }
  for (uint64_t v : {5u, 700u}) {
    b.Record(v);
    both.Record(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot direct = both.Snapshot();
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum_ticks, direct.sum_ticks);
  EXPECT_EQ(merged.max_ticks, direct.max_ticks);
  EXPECT_EQ(merged.buckets, direct.buckets);
  for (double p : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(merged.PercentileTicks(p), direct.PercentileTicks(p)) << p;
  }
}

TEST(ScopedPhaseTimer, RecordsIntoRegistryPhase) {
  MetricsRegistry reg;
  {
    ScopedPhaseTimer t(&reg, Phase::kValidate);
  }
  { ScopedPhaseTimer t(nullptr, Phase::kValidate); }  // null-safe
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.phase(Phase::kValidate).count, 1u);
  EXPECT_EQ(s.phase(Phase::kExecute).count, 0u);
  // PhasesJson now carries exactly the one phase with samples.
  EXPECT_NE(s.PhasesJson().find("\"validate\""), std::string::npos);
  EXPECT_EQ(s.PhasesJson().find("\"execute\""), std::string::npos);
}

TEST(PhaseSampler, FirstTickSamplesThenOncePerPeriod) {
  PhaseSampler s;
  EXPECT_TRUE(s.Tick());  // first transaction is always sampled
  int hits = 1;
  for (uint32_t i = 1; i < 3 * kPhaseSampleEvery; ++i) {
    if (s.Tick()) ++hits;
  }
  EXPECT_EQ(hits, 3);
}

TEST(Tsc, CalibrationIsPositiveAndStable) {
  const double r1 = TscTicksPerNs();
  const double r2 = TscTicksPerNs();
  EXPECT_GT(r1, 0.0);
  EXPECT_EQ(r1, r2);  // calibrated once, then cached
}

// ---------------------------------------------------------------------------
// ON-only: tracer ring-buffer semantics.

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Reset();
    Tracer::SetEnabled(true);
  }
  void TearDown() override {
    Tracer::SetEnabled(false);
    Tracer::Reset();
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer::SetEnabled(false);
  Tracer::Record(TraceEvent::kCommit, 1);
  std::vector<TraceRecord> out;
  EXPECT_EQ(Tracer::Drain(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(TracerTest, DrainReturnsEventsInTimestampOrder) {
  Tracer::Record(TraceEvent::kBegin, 1);
  Tracer::Record(TraceEvent::kRepairRound, 1);
  Tracer::Record(TraceEvent::kCommit, 1);
  std::vector<TraceRecord> out;
  ASSERT_EQ(Tracer::Drain(&out), 3u);
  EXPECT_EQ(out[0].kind, TraceEvent::kBegin);
  EXPECT_EQ(out[1].kind, TraceEvent::kRepairRound);
  EXPECT_EQ(out[2].kind, TraceEvent::kCommit);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].tsc, out[i - 1].tsc);
  }
  // Drain clears the rings.
  std::vector<TraceRecord> again;
  EXPECT_EQ(Tracer::Drain(&again), 0u);
}

TEST_F(TracerTest, WrapAroundKeepsNewestCapacityEvents) {
  const uint64_t total = kTraceCapacity + 100;
  for (uint64_t i = 0; i < total; ++i) {
    Tracer::Record(TraceEvent::kCommit, i);
  }
  std::vector<TraceRecord> out;
  ASSERT_EQ(Tracer::Drain(&out), kTraceCapacity);
  // Oldest surviving event is #100; events stay in recording order.
  EXPECT_EQ(out.front().id, 100u);
  EXPECT_EQ(out.back().id, total - 1);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, out[i - 1].id + 1);
    EXPECT_GE(out[i].tsc, out[i - 1].tsc);
  }
}

TEST_F(TracerTest, MultiThreadDrainMergesSortedByTimestamp) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Tracer::Record(TraceEvent::kBegin, t * kPerThread + i);
      }
    });
  }
  for (auto& t : ts) t.join();
  std::vector<TraceRecord> out;
  ASSERT_EQ(Tracer::Drain(&out), kThreads * kPerThread);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].tsc, out[i - 1].tsc);
  }
}

TEST_F(TracerTest, EventNamesCoverTheEnum) {
  for (int i = 0; i < static_cast<int>(TraceEvent::kNumEvents); ++i) {
    EXPECT_NE(TraceEventName(static_cast<TraceEvent>(i)), nullptr);
    EXPECT_GT(std::string_view(TraceEventName(static_cast<TraceEvent>(i)))
                  .size(),
              0u);
  }
}

#endif  // MV3C_OBS_ENABLED

}  // namespace
}  // namespace mv3c::obs
