// Recovery-equivalence tests (the durability acceptance bar): run a
// workload with the WAL on, snapshot order-independent digests of every
// table's visible committed state, replay the log into fresh tables, and
// require digest equality — for all four workloads, all three engine
// families, and specifically for MV3C histories containing repairs (whose
// records must carry the final, post-repair write set). Plus manual
// torn-tail corruption: truncating or flipping bytes in the newest block
// must yield the longest durable prefix, never a crash or a torn apply.
//
// MVCC loaders are transactional, so population is replayed from the log;
// the single-version loader is non-transactional, so SV recovery is
// checkpoint-style: reload with the same seed, then replay the log over it.
// Secondary indexes are derived data and not part of the equivalence
// check (recovery rebuilds base tables; index rebuild is orthogonal).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "sv/sv_executor.h"
#include "occ/occ_engine.h"
#include "silo/silo_engine.h"
#include "wal/catalog.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c {
namespace {

namespace fs = std::filesystem;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_recovery_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Async ack keeps the single-threaded window drive from serializing on
  /// the epoch interval; the test flushes explicitly before digesting.
  wal::WalConfig Config(wal::WalConfig::Ack ack = wal::WalConfig::Ack::kAsync) {
    wal::WalConfig c;
    c.dir = dir_.string();
    c.ack = ack;
    return c;
  }

  /// Counts records in the log carrying kFlagRepaired (raw scan, no
  /// catalog).
  uint64_t CountRepairedRecords() {
    uint64_t repaired = 0;
    (void)wal::ReplayLogDir(dir_.string(), [&](const wal::RecordView& r) {
      if ((r.header.flags & wal::kFlagRepaired) != 0) ++repaired;
      return true;
    });
    return repaired;
  }

  fs::path dir_;
};

// --- Banking: MV3C with repairs -----------------------------------------

TEST_F(WalRecoveryTest, BankingMv3cWithRepairs) {
  constexpr int64_t kAccounts = 200;       // few accounts => hot conflicts
  constexpr int64_t kInitial = 1'000'000;
  constexpr uint64_t kTxns = 3000;

  TransactionManager mgr;
  mgr.EnableWal(Config());
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();  // transactional: the population is itself logged

  banking::TransferGenerator gen(kAccounts, /*fee_fraction_percent=*/100,
                                 /*seed=*/42);
  std::vector<banking::TransferParams> stream;
  for (uint64_t i = 0; i < kTxns; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); }));
  ASSERT_GT(res.committed, kTxns / 2);
  const int64_t total_before = db.TotalBalance();
  EXPECT_EQ(total_before, kAccounts * kInitial);  // conservation invariant

  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();  // join writer, close segment

  // The contended fee account forces repairs; their commits must be in the
  // log flagged, carrying final write sets.
  EXPECT_GT(CountRepairedRecords(), 0u);

  const wal::TableDigest before = wal::DigestMvccTable(db.accounts);
  ASSERT_EQ(before.live_rows, static_cast<uint64_t>(kAccounts) + 1);

  // Crash: fresh manager, fresh (unloaded) database, replay.
  TransactionManager mgr2;
  banking::BankingDb db2(&mgr2, kAccounts, kInitial);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  EXPECT_GT(rep.records_applied, 0u);
  EXPECT_EQ(rep.records_skipped_unknown_table, 0u);

  EXPECT_EQ(wal::DigestMvccTable(db2.accounts), before);
  EXPECT_EQ(db2.TotalBalance(), total_before);

  // The recovered clock is past the replayed history: new transactions
  // run and see the replayed state.
  banking::TransferParams p;
  p.from = 1;
  p.to = 2;
  p.amount = 10;
  Mv3cExecutor e(&mgr2);
  ASSERT_EQ(e.Run(banking::Mv3cTransferMoney(db2, p)),
            StepResult::kCommitted);
  EXPECT_EQ(db2.TotalBalance(), total_before);
}

// --- Banking: OMVCC ------------------------------------------------------

TEST_F(WalRecoveryTest, BankingOmvcc) {
  constexpr int64_t kAccounts = 500;
  constexpr int64_t kInitial = 100'000;

  TransactionManager mgr;
  mgr.EnableWal(Config());
  banking::BankingDb db(&mgr, kAccounts, kInitial);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();

  banking::TransferGenerator gen(kAccounts, 50, /*seed=*/7);
  OmvccExecutor e(&mgr);
  uint64_t committed = 0;
  for (int i = 0; i < 1000; ++i) {
    if (e.Run(banking::OmvccTransferMoney(db, gen.Next())) ==
        StepResult::kCommitted) {
      ++committed;
    }
  }
  ASSERT_GT(committed, 500u);
  const int64_t total_before = db.TotalBalance();
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();

  const wal::TableDigest before = wal::DigestMvccTable(db.accounts);

  TransactionManager mgr2;
  banking::BankingDb db2(&mgr2, kAccounts, kInitial);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  EXPECT_EQ(wal::DigestMvccTable(db2.accounts), before);
  EXPECT_EQ(db2.TotalBalance(), total_before);
}

// --- Trading --------------------------------------------------------------

TEST_F(WalRecoveryTest, TradingMv3c) {
  TransactionManager mgr;
  mgr.EnableWal(Config());
  trading::TradingDb db(&mgr, /*n_securities=*/500, /*n_customers=*/200);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();

  trading::TradingGenerator gen(db, /*alpha=*/0.8,
                                /*trade_order_percent=*/70, /*seed=*/13);
  std::vector<trading::TradingGenerator::Txn> stream;
  for (int i = 0; i < 800; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(), [&](uint64_t i) -> Mv3cExecutor::Program {
        if (stream[i].is_trade_order) {
          return trading::Mv3cTradeOrder(db, stream[i].order);
        }
        return trading::Mv3cPriceUpdate(db, stream[i].price);
      }));
  ASSERT_GT(res.committed, 0u);
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();

  const wal::TableDigest sec = wal::DigestMvccTable(db.securities);
  const wal::TableDigest cus = wal::DigestMvccTable(db.customers);
  const wal::TableDigest trd = wal::DigestMvccTable(db.trades);
  const wal::TableDigest lin = wal::DigestMvccTable(db.trade_lines);

  TransactionManager mgr2;
  trading::TradingDb db2(&mgr2, 500, 200);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  EXPECT_EQ(wal::DigestMvccTable(db2.securities), sec);
  EXPECT_EQ(wal::DigestMvccTable(db2.customers), cus);
  EXPECT_EQ(wal::DigestMvccTable(db2.trades), trd);
  EXPECT_EQ(wal::DigestMvccTable(db2.trade_lines), lin);
}

// --- TATP -----------------------------------------------------------------

TEST_F(WalRecoveryTest, TatpMv3c) {
  constexpr uint64_t kSubs = 1000;
  TransactionManager mgr;
  mgr.EnableWal(Config());
  tatp::TatpDb db(&mgr, kSubs);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load(3);

  tatp::TatpGenerator gen(kSubs, 77);
  Mv3cExecutor e(&mgr);
  uint64_t committed = 0;
  for (int i = 0; i < 2000; ++i) {
    if (e.Run(tatp::Mv3cTatpProgram(db, gen.Next())) ==
        StepResult::kCommitted) {
      ++committed;
    }
  }
  ASSERT_GT(committed, 1000u);
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();

  const wal::TableDigest sub = wal::DigestMvccTable(db.subscribers);
  const wal::TableDigest ai = wal::DigestMvccTable(db.access_info);
  const wal::TableDigest sf = wal::DigestMvccTable(db.special_facilities);
  const wal::TableDigest cf = wal::DigestMvccTable(db.call_forwarding);

  TransactionManager mgr2;
  tatp::TatpDb db2(&mgr2, kSubs);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  // TATP deletes call-forwarding rows: tombstone records must replay.
  EXPECT_EQ(wal::DigestMvccTable(db2.subscribers), sub);
  EXPECT_EQ(wal::DigestMvccTable(db2.access_info), ai);
  EXPECT_EQ(wal::DigestMvccTable(db2.special_facilities), sf);
  EXPECT_EQ(wal::DigestMvccTable(db2.call_forwarding), cf);
}

// --- TPC-C: MV3C ----------------------------------------------------------

tpcc::TpccScale SmallScale() {
  tpcc::TpccScale s;
  s.n_warehouses = 1;
  s.n_districts = 4;
  s.n_customers_per_d = 60;
  s.n_items = 200;
  s.preload_orders_per_d = 40;
  s.preload_new_orders_per_d = 15;
  return s;
}

TEST_F(WalRecoveryTest, TpccMv3c) {
  TransactionManager mgr;
  mgr.EnableWal(Config());
  tpcc::TpccDb db(&mgr, SmallScale());
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load(7);

  tpcc::TpccGenerator gen(db.scale(), 17);
  std::vector<tpcc::TpccParams> stream;
  for (int i = 0; i < 400; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return tpcc::Mv3cTpccProgram(db, stream[i]); }));
  ASSERT_GT(res.committed, 0u);
  ASSERT_TRUE(mgr.wal()->FlushNow());
  mgr.DisableWal();

  std::vector<wal::TableDigest> before;
  auto digest_all = [](tpcc::TpccDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestMvccTable(d.warehouses), wal::DigestMvccTable(d.districts),
        wal::DigestMvccTable(d.customers),  wal::DigestMvccTable(d.history),
        wal::DigestMvccTable(d.orders),     wal::DigestMvccTable(d.new_orders),
        wal::DigestMvccTable(d.order_lines), wal::DigestMvccTable(d.items),
        wal::DigestMvccTable(d.stock)};
  };
  before = digest_all(db);

  TransactionManager mgr2;
  tpcc::TpccDb db2(&mgr2, SmallScale());
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir_.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  const std::vector<wal::TableDigest> after = digest_all(db2);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "table " << i;
  }
}

// --- TPC-C: single-version (OCC and SILO) ---------------------------------

template <typename Engine>
void RunSvTpccEquivalence(const fs::path& dir) {
  const tpcc::TpccScale scale = SmallScale();
  wal::WalConfig config;
  config.dir = dir.string();
  config.ack = wal::WalConfig::Ack::kSync;  // exercise the sync-wait path

  tpcc::SvTpccDb db(scale);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  {
    wal::LogManager lm(config);
    Engine engine;
    engine.set_wal(&lm);
    db.Load(7);  // non-transactional: NOT logged (checkpoint-style)

    tpcc::TpccGenerator gen(scale, 23);
    std::vector<tpcc::TpccParams> stream;
    for (int i = 0; i < 300; ++i) stream.push_back(gen.Next());
    WindowDriver<SvExecutor<Engine>> driver(8, [&](...) {
      auto e = std::make_unique<SvExecutor<Engine>>(&engine);
      e->set_wal(&lm);
      return e;
    });
    const DriveResult res =
        driver.Run(CountedSource<typename SvExecutor<Engine>::Program>(
            stream.size(),
            [&](uint64_t i) { return tpcc::SvTpccProgram(db, stream[i]); }));
    ASSERT_GT(res.committed, 0u);
    ASSERT_TRUE(lm.FlushNow());
    lm.Stop();
  }

  auto digest_all = [](tpcc::SvTpccDb& d) {
    return std::vector<wal::TableDigest>{
        wal::DigestSvTable(d.warehouses),  wal::DigestSvTable(d.districts),
        wal::DigestSvTable(d.customers),   wal::DigestSvTable(d.history),
        wal::DigestSvTable(d.orders),      wal::DigestSvTable(d.new_orders),
        wal::DigestSvTable(d.order_lines), wal::DigestSvTable(d.items),
        wal::DigestSvTable(d.stock)};
  };
  const std::vector<wal::TableDigest> before = digest_all(db);

  // Checkpoint-style recovery: reload the same population, replay on top.
  tpcc::SvTpccDb db2(scale);
  db2.Load(7);
  wal::Catalog cat2;
  RegisterWalTables(cat2, db2);
  const wal::RecoveryReport rep = cat2.Recover(dir.string());
  EXPECT_FALSE(rep.torn_tail) << rep.stop_reason;
  EXPECT_GT(rep.records_applied, 0u);
  const std::vector<wal::TableDigest> after = digest_all(db2);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "table " << i;
  }
}

TEST_F(WalRecoveryTest, TpccOcc) { RunSvTpccEquivalence<OccEngine>(dir_); }

TEST_F(WalRecoveryTest, TpccSilo) { RunSvTpccEquivalence<SiloEngine>(dir_); }

// --- Torn tails (manual corruption) ---------------------------------------

/// Runs a small banking history and returns the balance digest expected
/// from a clean replay; the caller corrupts the log and re-replays.
class WalTornTailTest : public WalRecoveryTest {
 protected:
  void WriteHistory() {
    TransactionManager mgr;
    wal::WalConfig c = Config();
    c.epoch_interval_us = 1;  // many small epochs => many blocks
    c.partitions = 1;         // the tests corrupt wal-000001.log in place
    mgr.EnableWal(c);
    banking::BankingDb db(&mgr, 50, 10'000);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    db.Load();
    banking::TransferGenerator gen(50, 100, 5);
    Mv3cExecutor e(&mgr);
    for (int i = 0; i < 300; ++i) {
      // Force frequent epoch boundaries between commits.
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
      if (i % 16 == 0) {
        ASSERT_TRUE(mgr.wal()->FlushNow());
      }
    }
    ASSERT_TRUE(mgr.wal()->FlushNow());
    mgr.DisableWal();
  }

  /// Replays into a fresh database; returns (report, digest, total).
  struct Replayed {
    wal::RecoveryReport report;
    wal::TableDigest digest;
    int64_t total = 0;
    uint64_t records = 0;
  };
  Replayed Replay() {
    Replayed r;
    TransactionManager mgr;
    banking::BankingDb db(&mgr, 50, 10'000);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    r.report = cat.Recover(dir_.string());
    r.records = r.report.records_applied;
    r.digest = wal::DigestMvccTable(db.accounts);
    r.total = db.TotalBalance();
    return r;
  }

  fs::path Segment() {
    fs::path p = dir_ / "wal-000001.log";
    EXPECT_TRUE(fs::exists(p));
    return p;
  }
};

TEST_F(WalTornTailTest, TruncatedTailRecoversPrefix) {
  WriteHistory();
  const Replayed clean = Replay();
  ASSERT_FALSE(clean.report.torn_tail) << clean.report.stop_reason;

  // Chop into the last block: everything before it must replay, and the
  // balance invariant must hold on the prefix (transactions never span
  // blocks, so the prefix is transaction-consistent).
  const uintmax_t size = fs::file_size(Segment());
  fs::resize_file(Segment(), size - 37);
  const Replayed torn = Replay();
  EXPECT_TRUE(torn.report.torn_tail);
  EXPECT_LT(torn.records, clean.records);
  EXPECT_GT(torn.records, 0u);
  EXPECT_EQ(torn.total, 50 * 10'000);  // conservation holds on any prefix
  EXPECT_LE(torn.report.max_epoch, clean.report.max_epoch);
}

TEST_F(WalTornTailTest, FlippedPayloadByteRecoversPrefix) {
  WriteHistory();
  const Replayed clean = Replay();

  std::fstream f(Segment(),
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(-20, std::ios::end);
  char b;
  f.read(&b, 1);
  f.seekp(-20, std::ios::end);
  b = static_cast<char>(b ^ 0x01);
  f.write(&b, 1);
  f.close();

  const Replayed torn = Replay();
  EXPECT_TRUE(torn.report.torn_tail);
  EXPECT_LT(torn.records, clean.records);
  EXPECT_EQ(torn.total, 50 * 10'000);
}

TEST_F(WalTornTailTest, GarbageAppendedAfterLastBlockIsCut) {
  WriteHistory();
  const Replayed clean = Replay();

  std::ofstream f(Segment(), std::ios::app | std::ios::binary);
  const char junk[64] = {0x5A};
  f.write(junk, sizeof(junk));
  f.close();

  const Replayed torn = Replay();
  // All real records survive; only the garbage tail is cut.
  EXPECT_TRUE(torn.report.torn_tail);
  EXPECT_EQ(torn.records, clean.records);
  EXPECT_EQ(torn.digest, clean.digest);
}

}  // namespace
}  // namespace mv3c
