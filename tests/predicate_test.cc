// Unit tests for the predicate criteria (precision locking, §2.1): key
// equality, row filters with before-image detection (rows entering AND
// leaving a result set must both conflict), key ranges over derived
// secondary keys, attribute-level short-circuiting, and tombstones.

#include <gtest/gtest.h>

#include "mvcc/predicate.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"

namespace mv3c {
namespace {

struct Row {
  int64_t score = 0;
  int64_t other = 0;

  void MergeFrom(const Row& base, ColumnMask modified) {
    if (!modified.Contains(0)) score = base.score;
    if (!modified.Contains(1)) other = base.other;
  }
};
using TestTable = Table<uint64_t, Row>;

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : table_("t", 64) {}

  /// Commits one operation and returns the committed version.
  template <typename Op>
  const VersionBase* CommitOp(Op&& op) {
    Transaction t(&mgr_);
    mgr_.Begin(&t);
    op(t);
    EXPECT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
    return mgr_.rc_head()->versions.back();
  }

  const VersionBase* CommitInsert(uint64_t key, Row row) {
    return CommitOp([&](Transaction& t) {
      EXPECT_EQ(t.Insert(table_, key, row), WriteStatus::kOk);
    });
  }

  const VersionBase* CommitUpdate(uint64_t key, Row row,
                                  ColumnMask mask = ColumnMask::All()) {
    return CommitOp([&](Transaction& t) {
      EXPECT_EQ(t.Update(table_, table_.Find(key), row, mask, false,
                         WwPolicy::kFailFast),
                WriteStatus::kOk);
    });
  }

  const VersionBase* CommitDelete(uint64_t key) {
    return CommitOp([&](Transaction& t) {
      EXPECT_EQ(t.Delete(table_, table_.Find(key)), WriteStatus::kOk);
    });
  }

  TransactionManager mgr_;
  TestTable table_;
};

TEST_F(PredicateTest, KeyEqMatchesOnlyItsKey) {
  const VersionBase* v5 = CommitInsert(5, {10, 0});
  const VersionBase* v6 = CommitInsert(6, {10, 0});
  KeyEqCriterion<TestTable> pred(&table_, 5);
  EXPECT_TRUE(pred.MatchesVersion(*v5));
  EXPECT_FALSE(pred.MatchesVersion(*v6));
}

TEST_F(PredicateTest, KeyEqMatchesInsertDeleteAndUpdateOfKey) {
  const VersionBase* ins = CommitInsert(7, {1, 1});
  KeyEqCriterion<TestTable> pred(&table_, 7);
  EXPECT_TRUE(pred.MatchesVersion(*ins));  // phantom insert detection
  const VersionBase* upd = CommitUpdate(7, {2, 2});
  EXPECT_TRUE(pred.MatchesVersion(*upd));
  const VersionBase* del = CommitDelete(7);
  EXPECT_TRUE(pred.MatchesVersion(*del));
}

TEST_F(PredicateTest, FilterMatchesRowEnteringResultSet) {
  CommitInsert(1, {100, 0});
  RowFilterCriterion<TestTable> pred(
      &table_, [](const Row& r) { return r.score >= 500; });
  // 100 -> 600 enters the set.
  const VersionBase* v = CommitUpdate(1, {600, 0});
  EXPECT_TRUE(pred.MatchesVersion(*v));
}

TEST_F(PredicateTest, FilterMatchesRowLeavingResultSet) {
  CommitInsert(2, {900, 0});
  RowFilterCriterion<TestTable> pred(
      &table_, [](const Row& r) { return r.score >= 500; });
  // 900 -> 100 leaves the set: the before-image matches.
  const VersionBase* v = CommitUpdate(2, {100, 0});
  EXPECT_TRUE(pred.MatchesVersion(*v));
}

TEST_F(PredicateTest, FilterIgnoresIrrelevantTransitions) {
  CommitInsert(3, {100, 0});
  RowFilterCriterion<TestTable> pred(
      &table_, [](const Row& r) { return r.score >= 500; });
  // 100 -> 200: outside the set before and after.
  const VersionBase* v = CommitUpdate(3, {200, 0});
  EXPECT_FALSE(pred.MatchesVersion(*v));
}

TEST_F(PredicateTest, FilterMatchesDeleteOfMatchingRow) {
  CommitInsert(4, {800, 0});
  RowFilterCriterion<TestTable> pred(
      &table_, [](const Row& r) { return r.score >= 500; });
  const VersionBase* del = CommitDelete(4);
  EXPECT_TRUE(pred.MatchesVersion(*del));
}

TEST_F(PredicateTest, FilterIgnoresDeleteOfNonMatchingRow) {
  CommitInsert(8, {50, 0});
  RowFilterCriterion<TestTable> pred(
      &table_, [](const Row& r) { return r.score >= 500; });
  const VersionBase* del = CommitDelete(8);
  EXPECT_FALSE(pred.MatchesVersion(*del));
}

TEST_F(PredicateTest, KeyRangeMatchesDerivedKeyInRange) {
  CommitInsert(10, {42, 0});
  KeyRangeCriterion<TestTable, int64_t> pred(
      &table_, 40, 50,
      [](const uint64_t&, const Row& r) { return r.score; });
  const VersionBase* in = CommitUpdate(10, {45, 0});
  EXPECT_TRUE(pred.MatchesVersion(*in));
  // Moves out of range: the before-image (45) still matches.
  const VersionBase* out = CommitUpdate(10, {99, 0});
  EXPECT_TRUE(pred.MatchesVersion(*out));
  // 99 -> 120: no endpoint in range.
  const VersionBase* out2 = CommitUpdate(10, {120, 0});
  EXPECT_FALSE(pred.MatchesVersion(*out2));
}

TEST_F(PredicateTest, KeyRangeResidualFilterNarrows) {
  CommitInsert(11, {45, 7});
  KeyRangeCriterion<TestTable, int64_t> pred(
      &table_, 40, 50, [](const uint64_t&, const Row& r) { return r.score; },
      [](const Row& r) { return r.other > 100; });
  const VersionBase* v = CommitUpdate(11, {46, 8});
  EXPECT_FALSE(pred.MatchesVersion(*v));  // residual filter rejects
  const VersionBase* v2 = CommitUpdate(11, {46, 200});
  EXPECT_TRUE(pred.MatchesVersion(*v2));
}

TEST_F(PredicateTest, AttributeLevelShortCircuit) {
  CommitInsert(12, {45, 0});
  KeyEqCriterion<TestTable> pred(&table_, 12);
  pred.set_monitored(ColumnMask::Of(0));  // watches `score` only
  const VersionBase* other_col = CommitUpdate(12, {45, 99}, ColumnMask::Of(1));
  EXPECT_FALSE(pred.ConflictsWith(*other_col));
  const VersionBase* score_col = CommitUpdate(12, {46, 99}, ColumnMask::Of(0));
  EXPECT_TRUE(pred.ConflictsWith(*score_col));
  // Disabling the optimization makes both conflict (whole-record match).
  g_attribute_level_validation.store(false);
  EXPECT_TRUE(pred.ConflictsWith(*other_col));
  g_attribute_level_validation.store(true);
}

TEST_F(PredicateTest, ConflictsWithFiltersForeignTables) {
  TestTable other_table("other", 16);
  Transaction t(&mgr_);
  mgr_.Begin(&t);
  ASSERT_EQ(t.Insert(other_table, 5, Row{1, 1}), WriteStatus::kOk);
  ASSERT_TRUE(mgr_.TryCommit(&t, [](CommittedRecord*) { return true; }));
  const VersionBase* foreign = mgr_.rc_head()->versions[0];
  KeyEqCriterion<TestTable> pred(&table_, 5);
  EXPECT_FALSE(pred.ConflictsWith(*foreign));  // same key, wrong table
}

TEST_F(PredicateTest, PartialColumnCommitMergesUnmodifiedColumns) {
  CommitInsert(13, {10, 20});
  // Writer A updates only `other`; its snapshot of `score` is stale by
  // the time it commits, but the commit merges the unmodified column from
  // the latest committed version.
  Transaction a(&mgr_);
  mgr_.Begin(&a);
  ASSERT_EQ(a.Update(table_, table_.Find(13), Row{10, 777},
                     ColumnMask::Of(1), true,
                     WwPolicy::kAllowMultiple),
            WriteStatus::kOk);
  // Meanwhile `score` changes and commits.
  CommitUpdate(13, {555, 20}, ColumnMask::Of(0));
  ASSERT_TRUE(mgr_.TryCommit(&a, [](CommittedRecord*) { return true; }));
  Transaction reader(&mgr_);
  mgr_.Begin(&reader);
  const auto* v = table_.Find(13)->ReadVisible(reader.start_ts(), 0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data().score, 555);  // not clobbered back to 10
  EXPECT_EQ(v->data().other, 777);
  mgr_.CommitReadOnly(&reader);
}

}  // namespace
}  // namespace mv3c
