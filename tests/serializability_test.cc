// Property tests for commit-order serializability (Theorem 2.1): the final
// database state after a concurrent run must equal the state produced by
// re-executing the committed transactions serially in commit-timestamp
// order, and the Banking money-conservation invariant must hold. Run for
// both MV3C (repair) and OMVCC (abort/restart), over window-simulated
// concurrency (paper Appendix C) and real threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/thread_driver.h"
#include "driver/window_driver.h"
#include "workloads/banking.h"

namespace mv3c {
namespace {

using banking::AccountRow;
using banking::BankingDb;
using banking::TransferParams;

constexpr int64_t kAccounts = 32;  // small -> frequent conflicts
constexpr int64_t kInitial = 1'000'000;
constexpr uint64_t kTxns = 2000;

std::vector<TransferParams> MakeStream(int fee_percent, uint64_t seed) {
  banking::TransferGenerator gen(kAccounts, fee_percent, seed);
  std::vector<TransferParams> stream;
  stream.reserve(kTxns);
  for (uint64_t i = 0; i < kTxns; ++i) stream.push_back(gen.Next());
  return stream;
}

/// Re-executes `committed` (ordered by commit timestamp) serially on a
/// fresh database and returns every account balance.
std::vector<int64_t> SerialReference(
    const std::vector<std::pair<Timestamp, TransferParams>>& committed) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  Mv3cExecutor exec(&mgr);
  for (const auto& [cts, params] : committed) {
    const StepResult r = exec.Run(banking::Mv3cTransferMoney(db, params));
    EXPECT_EQ(r, StepResult::kCommitted)
        << "committed transaction must re-commit serially";
  }
  std::vector<int64_t> balances;
  for (int64_t id = 0; id <= kAccounts; ++id) {
    balances.push_back(db.BalanceOf(id));
  }
  return balances;
}

std::vector<int64_t> Balances(BankingDb& db) {
  std::vector<int64_t> out;
  for (int64_t id = 0; id <= kAccounts; ++id) out.push_back(db.BalanceOf(id));
  return out;
}

class WindowSerializabilityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WindowSerializabilityTest, Mv3cWindowRunIsCommitOrderSerializable) {
  const size_t window = GetParam();
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  const auto stream = MakeStream(/*fee_percent=*/100, /*seed=*/7 + window);

  std::vector<std::pair<Timestamp, TransferParams>> committed;
  WindowDriver<Mv3cExecutor> driver(
      window, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  driver.set_on_complete(
      [&](uint64_t idx, StepResult r, Mv3cExecutor& exec) {
        if (r == StepResult::kCommitted && !exec.txn().ReadOnly()) {
        }
        if (r == StepResult::kCommitted) {
          committed.push_back({exec.last_commit_ts(), stream[idx]});
        }
      });
  const DriveResult result =
      driver.Run(CountedSource<Mv3cExecutor::Program>(
          kTxns, [&](uint64_t i) {
            return banking::Mv3cTransferMoney(db, stream[i]);
          }));
  // The retry budget may shed a few starved transactions as kExhausted
  // (they are rolled back and excluded from the serial reference).
  EXPECT_EQ(result.committed + result.user_aborted + result.exhausted, kTxns);

  // Money conservation.
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);

  // Commit-order serial equivalence.
  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(Balances(db), SerialReference(committed));
}

TEST_P(WindowSerializabilityTest, OmvccWindowRunIsCommitOrderSerializable) {
  const size_t window = GetParam();
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  const auto stream = MakeStream(/*fee_percent=*/100, /*seed=*/19 + window);

  std::vector<std::pair<Timestamp, TransferParams>> committed;
  WindowDriver<OmvccExecutor> driver(
      window, [&](...) { return std::make_unique<OmvccExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  driver.set_on_complete(
      [&](uint64_t idx, StepResult r, OmvccExecutor& exec) {
        if (r == StepResult::kCommitted) {
          committed.push_back({exec.last_commit_ts(), stream[idx]});
        }
      });
  const DriveResult result =
      driver.Run(CountedSource<OmvccExecutor::Program>(
          kTxns, [&](uint64_t i) {
            return banking::OmvccTransferMoney(db, stream[i]);
          }));
  // The retry budget may shed a few starved transactions as kExhausted
  // (they are rolled back and excluded from the serial reference).
  EXPECT_EQ(result.committed + result.user_aborted + result.exhausted, kTxns);
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);

  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(Balances(db), SerialReference(committed));
}

// Mixed engines in one run: MV3C and OMVCC transactions interoperate (§3)
// because they share the recently-committed list and validation machinery.
TEST_P(WindowSerializabilityTest, MixedEnginesInteroperate) {
  const size_t window = GetParam();
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  const auto stream = MakeStream(/*fee_percent=*/100, /*seed=*/31 + window);

  // Drive both engines in lockstep windows by alternating streams.
  std::vector<std::pair<Timestamp, TransferParams>> committed;
  std::mutex mu;
  auto record = [&](Timestamp cts, const TransferParams& p) {
    std::lock_guard<std::mutex> g(mu);
    committed.push_back({cts, p});
  };

  WindowDriver<Mv3cExecutor> mv3c_driver(
      std::max<size_t>(1, window / 2),
      [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); });
  WindowDriver<OmvccExecutor> omvcc_driver(
      std::max<size_t>(1, window / 2),
      [&](...) { return std::make_unique<OmvccExecutor>(&mgr); });
  mv3c_driver.set_on_complete(
      [&](uint64_t idx, StepResult r, Mv3cExecutor& e) {
        if (r == StepResult::kCommitted)
          record(e.last_commit_ts(), stream[idx * 2]);
      });
  omvcc_driver.set_on_complete(
      [&](uint64_t idx, StepResult r, OmvccExecutor& e) {
        if (r == StepResult::kCommitted)
          record(e.last_commit_ts(), stream[idx * 2 + 1]);
      });
  // Interleave: run each driver on alternate halves of the stream, on two
  // threads so their windows overlap in time.
  std::thread t1([&] {
    mv3c_driver.Run(CountedSource<Mv3cExecutor::Program>(
        kTxns / 2, [&](uint64_t i) {
          return banking::Mv3cTransferMoney(db, stream[i * 2]);
        }));
  });
  std::thread t2([&] {
    omvcc_driver.Run(CountedSource<OmvccExecutor::Program>(
        kTxns / 2, [&](uint64_t i) {
          return banking::OmvccTransferMoney(db, stream[i * 2 + 1]);
        }));
  });
  t1.join();
  t2.join();

  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
  std::sort(committed.begin(), committed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(Balances(db), SerialReference(committed));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSerializabilityTest,
                         ::testing::Values(1, 2, 8, 32, 64));

TEST(ThreadedSerializabilityTest, Mv3cThreadedRunIsCommitOrderSerializable) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  const auto stream = MakeStream(/*fee_percent=*/100, /*seed=*/99);

  std::mutex mu;
  std::vector<std::pair<Timestamp, TransferParams>> committed;
  const DriveResult result = ThreadDriver<Mv3cExecutor>::Run(
      4, kTxns, [&](size_t) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&](uint64_t i, size_t) {
        return Mv3cExecutor::Program(
            [&, i](Mv3cTransaction& t) -> ExecStatus {
              const auto st = banking::Mv3cTransferMoney(db, stream[i])(t);
              return st;
            });
      },
      [&] { mgr.CollectGarbage(); });
  (void)result;
  // Threaded commit timestamps are not captured per txn here (the driver is
  // outcome-oriented); verify the conservation invariant instead, which a
  // serializability violation on this workload would break.
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

TEST(ThreadedSerializabilityTest, MixedPolicyStressConservesMoney) {
  TransactionManager mgr;
  BankingDb db(&mgr, kAccounts, kInitial);
  db.Load();
  banking::TransferGenerator gen(kAccounts, /*fee*/ 60, /*seed=*/5);
  std::vector<TransferParams> stream;
  for (uint64_t i = 0; i < kTxns; ++i) stream.push_back(gen.Next());

  const DriveResult result = ThreadDriver<OmvccExecutor>::Run(
      4, kTxns, [&](size_t) { return std::make_unique<OmvccExecutor>(&mgr); },
      [&](uint64_t i, size_t) { return banking::OmvccTransferMoney(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  // The retry budget may shed a few starved transactions as kExhausted
  // (they are rolled back and excluded from the serial reference).
  EXPECT_EQ(result.committed + result.user_aborted + result.exhausted, kTxns);
  EXPECT_EQ(db.TotalBalance(), kAccounts * kInitial);
}

}  // namespace
}  // namespace mv3c
