// Trading benchmark (paper Example 5) workload tests: payload round trip,
// TradeOrder/PriceUpdate semantics under both engines, the blind-write
// asymmetry (§6.1.1), and repair locality (conflicting TradeOrders repair
// only the touched security's predicate without re-decrypting).

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "workloads/trading.h"

namespace mv3c {
namespace {

using namespace mv3c::trading;  // NOLINT

class TradingTest : public ::testing::Test {
 protected:
  TradingTest() : db_(&mgr_, 1000, 500) { db_.Load(); }

  TradeOrderParams MakeOrder(uint64_t customer, uint64_t trade_id,
                             std::vector<uint64_t> security_ids) {
    OrderPayload p{};
    p.trade_id = trade_id;
    p.timestamp = trade_id * 7;
    p.n_items = static_cast<uint32_t>(security_ids.size());
    for (size_t i = 0; i < security_ids.size(); ++i) {
      p.items[i].security_id = security_ids[i];
      p.items[i].buy = 1;
    }
    TradeOrderParams params;
    params.customer_id = customer;
    params.payload = EncodePayload(p, CustomerKeyFor(customer));
    return params;
  }

  TransactionManager mgr_;
  TradingDb db_;
};

TEST(TradingPayloadTest, CipherRoundTrip) {
  OrderPayload p{};
  p.trade_id = 42;
  p.timestamp = 7;
  p.n_items = 2;
  p.items[0] = {17, 1};
  p.items[1] = {23, -1};
  const Blob blob = EncodePayload(p, 0xDEADBEEF);
  const OrderPayload q = DecodePayload(blob, 0xDEADBEEF);
  EXPECT_EQ(q.trade_id, 42u);
  EXPECT_EQ(q.n_items, 2u);
  EXPECT_EQ(q.items[0].security_id, 17u);
  EXPECT_EQ(q.items[1].buy, -1);
  // Wrong key garbles the payload.
  const OrderPayload bad = DecodePayload(blob, 0xBADF00D);
  EXPECT_NE(bad.trade_id, 42u);
}

TEST_F(TradingTest, TradeOrderInsertsTradeAndLines) {
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTradeOrder(db_, MakeOrder(3, 100, {5, 9, 11}))),
            StepResult::kCommitted);
  EXPECT_EQ(db_.trades.ObjectCount(), 1u);
  EXPECT_EQ(db_.trade_lines.ObjectCount(), 3u);
  // Line content decrypts to the ordered security.
  Mv3cExecutor r(&mgr_);
  ASSERT_EQ(r.Run([&](Mv3cTransaction& t) {
              return t.Lookup(
                  db_.trade_lines, 100 * 16 + 0, ColumnMask::All(),
                  [&](Mv3cTransaction&, TradeLineTable::Object*,
                      const TradeLineRow* row) {
                    EXPECT_NE(row, nullptr);
                    const OrderPayload line = DecodePayload(
                        row->encrypted_data, CustomerKeyFor(3));
                    EXPECT_EQ(line.items[0].security_id, 5u);
                    return ExecStatus::kOk;
                  });
            }),
            StepResult::kCommitted);
}

TEST_F(TradingTest, PriceUpdateBlindWriteNeverConflictsInMv3c) {
  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(Mv3cPriceUpdate(db_, {7, 1111}));
  b.Reset(Mv3cPriceUpdate(db_, {7, 2222}));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);
  EXPECT_EQ(b.stats().validation_failures, 0u);
  EXPECT_EQ(b.stats().ww_restarts, 0u);
  // Later committer wins.
  Mv3cExecutor r(&mgr_);
  ASSERT_EQ(r.Run([&](Mv3cTransaction& t) {
              return t.Lookup(db_.securities, 7, ColumnMask::All(),
                              [](Mv3cTransaction&, SecurityTable::Object*,
                                 const SecurityRow* row) {
                                EXPECT_EQ(row->price, 2222);
                                return ExecStatus::kOk;
                              });
            }),
            StepResult::kCommitted);
}

TEST_F(TradingTest, PriceUpdateConflictsInOmvcc) {
  OmvccExecutor a(&mgr_), b(&mgr_);
  a.Reset(OmvccPriceUpdate(db_, {7, 1111}));
  b.Reset(OmvccPriceUpdate(db_, {7, 2222}));
  a.Begin();
  b.Begin();
  // a executes without committing: b fail-fasts on the uncommitted version.
  ASSERT_EQ(OmvccPriceUpdate(db_, {7, 1111})(a.txn()), ExecStatus::kOk);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
  EXPECT_EQ(b.stats().ww_restarts, 1u);
  a.txn().RollbackAll();
  mgr_.FinishAborted(&a.txn().inner());
}

// The paper's central Trading claim: a conflicting TradeOrder repairs only
// the invalidated security predicate; the decrypt/deserialize closure
// (root) does not re-run.
TEST_F(TradingTest, ConflictRepairsOnlyTouchedSecurity) {
  Mv3cExecutor order(&mgr_);
  order.Reset(Mv3cTradeOrder(db_, MakeOrder(3, 100, {5, 9, 11})));
  order.Begin();
  // A PriceUpdate on security 9 commits first.
  Mv3cExecutor pu(&mgr_);
  ASSERT_EQ(pu.Run(Mv3cPriceUpdate(db_, {9, 4242})), StepResult::kCommitted);
  ASSERT_EQ(order.Step(), StepResult::kNeedsRetry);
  ASSERT_EQ(order.Step(), StepResult::kCommitted);
  EXPECT_EQ(order.stats().repair_rounds, 1u);
  EXPECT_EQ(order.stats().invalidated_predicates, 1u);
  EXPECT_EQ(order.stats().reexecuted_closures, 1u);  // only security 9
  // The repaired trade line reflects the new price.
  Mv3cExecutor r(&mgr_);
  ASSERT_EQ(r.Run([&](Mv3cTransaction& t) {
              return t.Lookup(
                  db_.trade_lines, 100 * 16 + 1, ColumnMask::All(),
                  [&](Mv3cTransaction&, TradeLineTable::Object*,
                      const TradeLineRow* row) {
                    const OrderPayload line = DecodePayload(
                        row->encrypted_data, CustomerKeyFor(3));
                    EXPECT_EQ(static_cast<int64_t>(line.trade_id), -4242);
                    return ExecStatus::kOk;
                  });
            }),
            StepResult::kCommitted);
}

TEST_F(TradingTest, GeneratorProducesValidMixAndZipfSkew) {
  TradingGenerator gen(db_, /*alpha=*/1.4, /*trade_order_percent=*/50,
                       /*seed=*/9);
  int orders = 0, updates = 0;
  uint64_t rank0_hits = 0, total_items = 0;
  for (int i = 0; i < 5000; ++i) {
    auto txn = gen.Next();
    if (txn.is_trade_order) {
      ++orders;
      const OrderPayload p = DecodePayload(
          txn.order.payload, CustomerKeyFor(txn.order.customer_id));
      ASSERT_GE(p.n_items, 1u);
      ASSERT_LE(p.n_items, static_cast<uint32_t>(kMaxOrderItems));
      for (uint32_t k = 0; k < p.n_items; ++k) {
        ASSERT_LT(p.items[k].security_id, db_.n_securities());
        ++total_items;
        if (p.items[k].security_id == 0) ++rank0_hits;
      }
    } else {
      ++updates;
      ASSERT_LT(txn.price.security_id, db_.n_securities());
    }
  }
  EXPECT_GT(orders, 2000);
  EXPECT_GT(updates, 2000);
  // alpha=1.4 concentrates a large share of accesses on the top item.
  EXPECT_GT(static_cast<double>(rank0_hits) / total_items, 0.2);
}

// End-to-end window run with conflicts: both engines complete the same
// stream; MV3C commits with repairs, OMVCC with restarts.
TEST_F(TradingTest, WindowRunBothEnginesComplete) {
  TradingGenerator gen(db_, 1.4, 50, 123);
  std::vector<TradingGenerator::Txn> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      16, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); },
      [&] { mgr_.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(), [&](uint64_t i) -> Mv3cExecutor::Program {
        const auto& txn = stream[i];
        return txn.is_trade_order ? Mv3cTradeOrder(db_, txn.order)
                                  : Mv3cPriceUpdate(db_, txn.price);
      }));
  EXPECT_EQ(res.committed, stream.size());

  // Run the same stream against OMVCC on a fresh database (trade ids would
  // otherwise collide).
  TransactionManager mgr2;
  TradingDb db2(&mgr2, 1000, 500);
  db2.Load();
  WindowDriver<OmvccExecutor> driver2(
      16, [&](...) { return std::make_unique<OmvccExecutor>(&mgr2); },
      [&] { mgr2.CollectGarbage(); });
  const DriveResult res2 = driver2.Run(CountedSource<OmvccExecutor::Program>(
      stream.size(), [&](uint64_t i) -> OmvccExecutor::Program {
        const auto& txn = stream[i];
        return txn.is_trade_order ? OmvccTradeOrder(db2, txn.order)
                                  : OmvccPriceUpdate(db2, txn.price);
      }));
  EXPECT_EQ(res2.committed, stream.size());
  // Same number of trades recorded by both engines.
  EXPECT_EQ(db_.trades.ObjectCount(), db2.trades.ObjectCount());
  EXPECT_EQ(db_.trade_lines.ObjectCount(), db2.trade_lines.ObjectCount());
}

}  // namespace
}  // namespace mv3c
